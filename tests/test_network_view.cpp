// Unit tests of the NetworkView decision snapshot: link facts, believed
// flows with their per-link index, write-through mutations and the bounded
// tentative scope the multi-read planner relies on.
#include "net/network_view.hpp"

#include <gtest/gtest.h>

#include "net/tree.hpp"

namespace mayflower::net {
namespace {

class NetworkViewTest : public ::testing::Test {
 protected:
  NetworkViewTest() : tree_(build_three_tier(ThreeTierConfig{})) {
    view_.reset_links(tree_.topo);
  }

  Path path_between(NodeId a, NodeId b) {
    return shortest_paths(tree_.topo, a, b).at(0);
  }

  ThreeTier tree_;
  NetworkView view_;
};

TEST_F(NetworkViewTest, ResetLinksStartsEverythingUpAtConfiguredCapacity) {
  ASSERT_EQ(view_.link_count(), tree_.topo.link_count());
  for (LinkId l = 0; l < static_cast<LinkId>(view_.link_count()); ++l) {
    EXPECT_TRUE(view_.link_up(l));
    EXPECT_DOUBLE_EQ(view_.capacity_bps(l), tree_.topo.link(l).capacity_bps);
    EXPECT_DOUBLE_EQ(view_.tx_rate_bps(l), 0.0);  // no monitor attached
  }
  EXPECT_EQ(view_.flow_count(), 0u);
}

TEST_F(NetworkViewTest, StampRecordsEpochAndBuildTime) {
  view_.stamp(42, sim::SimTime::from_seconds(3.5));
  EXPECT_EQ(view_.epoch(), 42u);
  EXPECT_DOUBLE_EQ(view_.built_at().seconds(), 3.5);
}

TEST_F(NetworkViewTest, PathAliveTracksMarkedDownLinks) {
  const Path p = path_between(tree_.hosts[0], tree_.hosts[16]);
  EXPECT_TRUE(view_.path_alive(p));
  view_.mark_link_down(p.links[1]);
  EXPECT_FALSE(view_.path_alive(p));
  EXPECT_FALSE(view_.link_up(p.links[1]));
  // Zero-hop paths (host-local reads) are always alive.
  EXPECT_TRUE(view_.path_alive(Path{}));
}

TEST_F(NetworkViewTest, TxRatesAreIndependentPerLink) {
  view_.set_tx_rate(3, 1.5e6);
  EXPECT_DOUBLE_EQ(view_.tx_rate_bps(3), 1.5e6);
  EXPECT_DOUBLE_EQ(view_.tx_rate_bps(4), 0.0);
}

TEST_F(NetworkViewTest, FlowsOnLinkAndPathComeBackInKeyOrder) {
  const Path p1 = path_between(tree_.hosts[0], tree_.hosts[1]);
  const Path p2 = path_between(tree_.hosts[2], tree_.hosts[1]);
  // Insert out of key order; lookups must still return ascending keys.
  view_.add_flow(9, p1, 1e6, 1e6);
  view_.add_flow(4, p2, 1e6, 1e6);
  view_.add_flow(7, p1, 1e6, 1e6);

  // p1 and p2 share the downlink into hosts[1] (the last link).
  const LinkId shared = p1.links.back();
  ASSERT_EQ(shared, p2.links.back());
  const auto on_shared = view_.flows_on_link(shared);
  ASSERT_EQ(on_shared.size(), 3u);
  EXPECT_EQ(on_shared[0]->key, 4u);
  EXPECT_EQ(on_shared[1]->key, 7u);
  EXPECT_EQ(on_shared[2]->key, 9u);

  // flows_on_path deduplicates a flow crossing several of the path's links.
  const auto on_p1 = view_.flows_on_path(p1);
  ASSERT_EQ(on_p1.size(), 3u);  // 9 and 7 fully overlap, 4 joins at the end
  EXPECT_EQ(on_p1[0]->key, 4u);
  EXPECT_EQ(on_p1[1]->key, 7u);
  EXPECT_EQ(on_p1[2]->key, 9u);

  // A disjoint path sees nothing.
  const Path far = path_between(tree_.hosts[40], tree_.hosts[41]);
  EXPECT_TRUE(view_.flows_on_path(far).empty());
}

TEST_F(NetworkViewTest, WriteThroughMutationsUpdateFlowsAndIndex) {
  const Path p = path_between(tree_.hosts[0], tree_.hosts[1]);
  view_.add_flow(1, p, 8e6, 2e6);
  const NetworkView::Flow* f = view_.find(1);
  ASSERT_NE(f, nullptr);
  EXPECT_DOUBLE_EQ(f->remaining_bytes, 8e6);

  view_.set_flow_bps(1, 5e6);
  EXPECT_DOUBLE_EQ(view_.find(1)->bw_bps, 5e6);
  view_.resize_flow(1, 3e6);
  EXPECT_DOUBLE_EQ(view_.find(1)->size_bytes, 3e6);
  EXPECT_DOUBLE_EQ(view_.find(1)->remaining_bytes, 3e6);

  view_.drop_flow(1);
  EXPECT_EQ(view_.find(1), nullptr);
  EXPECT_TRUE(view_.flows_on_path(p).empty());  // index pruned too
  view_.drop_flow(1);  // idempotent
}

TEST_F(NetworkViewTest, FlowStatsKeyedByCookie) {
  NetworkView::FlowStats s;
  s.bytes_sent = 123.0;
  s.path = path_between(tree_.hosts[0], tree_.hosts[1]);
  view_.set_flow_stats(77, s);
  ASSERT_NE(view_.flow_stats(77), nullptr);
  EXPECT_DOUBLE_EQ(view_.flow_stats(77)->bytes_sent, 123.0);
  EXPECT_EQ(view_.flow_stats(78), nullptr);
  EXPECT_EQ(view_.all_flow_stats().size(), 1u);
}

TEST_F(NetworkViewTest, RollbackRestoresPreTentativeState) {
  const Path p1 = path_between(tree_.hosts[0], tree_.hosts[1]);
  const Path p2 = path_between(tree_.hosts[2], tree_.hosts[3]);
  view_.add_flow(1, p1, 8e6, 2e6);

  view_.begin_tentative();
  EXPECT_TRUE(view_.tentative_active());
  view_.set_flow_bps(1, 9e6);        // mutate an existing flow
  view_.set_flow_bps(1, 1e6);        // twice: undo must keep FIRST-touch state
  view_.add_flow(2, p2, 4e6, 1e6);  // and add a new one
  view_.rollback_tentative();

  EXPECT_FALSE(view_.tentative_active());
  EXPECT_DOUBLE_EQ(view_.find(1)->bw_bps, 2e6);
  EXPECT_EQ(view_.find(2), nullptr);
  EXPECT_TRUE(view_.flows_on_path(p2).empty());
}

TEST_F(NetworkViewTest, RollbackResurrectsDroppedFlow) {
  const Path p = path_between(tree_.hosts[0], tree_.hosts[1]);
  view_.add_flow(1, p, 8e6, 2e6);
  view_.begin_tentative();
  view_.drop_flow(1);
  EXPECT_EQ(view_.find(1), nullptr);
  view_.rollback_tentative();
  ASSERT_NE(view_.find(1), nullptr);
  EXPECT_DOUBLE_EQ(view_.find(1)->bw_bps, 2e6);
  ASSERT_EQ(view_.flows_on_path(p).size(), 1u);  // back in the index
}

TEST_F(NetworkViewTest, CommitKeepsTentativeMutations) {
  const Path p = path_between(tree_.hosts[0], tree_.hosts[1]);
  view_.begin_tentative();
  view_.add_flow(5, p, 8e6, 2e6);
  view_.commit_tentative();
  EXPECT_FALSE(view_.tentative_active());
  ASSERT_NE(view_.find(5), nullptr);
  // The scope is closed: further mutations are permanent, a new scope
  // starts from the committed state.
  view_.begin_tentative();
  view_.drop_flow(5);
  view_.rollback_tentative();
  EXPECT_NE(view_.find(5), nullptr);
}

TEST_F(NetworkViewTest, UnloadShardRemovesOnlyThatShardsFlows) {
  view_.set_shard_map(ShardMap::by_edge_switch(tree_.topo));
  ASSERT_GT(view_.shard_count(), 1u);
  // One intra-rack flow in rack 0, one in rack 1, one cross-rack FROM rack 0
  // (sharded by its source edge, rack 0).
  const Path rack0 = path_between(tree_.hosts[0], tree_.hosts[1]);
  const Path rack1 = path_between(tree_.hosts[4], tree_.hosts[5]);
  const Path cross = path_between(tree_.hosts[0], tree_.hosts[4]);
  view_.add_flow(1, rack0, 8e6, 2e6);
  view_.add_flow(2, rack1, 8e6, 2e6);
  view_.add_flow(3, cross, 8e6, 2e6);

  const std::uint32_t shard0 =
      view_.shard_map().shard_of_node(tree_.hosts[0]);
  view_.unload_shard(shard0);
  EXPECT_EQ(view_.find(1), nullptr);
  EXPECT_EQ(view_.find(3), nullptr);  // cross-rack flow left with its source
  ASSERT_NE(view_.find(2), nullptr);
  // The link index dropped the unloaded flows too.
  EXPECT_TRUE(view_.flows_on_path(rack0).empty());
  EXPECT_TRUE(view_.flows_on_path(cross).empty());
  EXPECT_EQ(view_.flows_on_path(rack1).size(), 1u);
  EXPECT_EQ(view_.flow_count(), 1u);
}

TEST_F(NetworkViewTest, ShardStampsRoundTrip) {
  view_.set_shard_map(ShardMap::by_edge_switch(tree_.topo));
  EXPECT_EQ(view_.shard_stamp(2), 0u);  // unstamped: never built
  view_.stamp_shard(2, 17);
  view_.stamp_shard(5, 3);
  EXPECT_EQ(view_.shard_stamp(2), 17u);
  EXPECT_EQ(view_.shard_stamp(5), 3u);
  EXPECT_EQ(view_.shard_stamp(1), 0u);
}

TEST_F(NetworkViewTest, RefreshLinkStateKeepsBelievedFlows) {
  const Path p = path_between(tree_.hosts[0], tree_.hosts[1]);
  view_.add_flow(1, p, 8e6, 2e6);
  view_.mark_link_down(p.links[0]);
  view_.set_tx_rate(p.links[0], 5e6);
  view_.refresh_link_state(tree_.topo);
  // Link sections are re-initialized (all up, configured capacity, no
  // rates)...
  EXPECT_TRUE(view_.link_up(p.links[0]));
  EXPECT_DOUBLE_EQ(view_.tx_rate_bps(p.links[0]), 0.0);
  // ...while the believed-flow section survives untouched.
  ASSERT_NE(view_.find(1), nullptr);
  EXPECT_EQ(view_.flows_on_path(p).size(), 1u);
}

TEST_F(NetworkViewTest, RollbackRestoresShardTrackedFlow) {
  // The undo path must maintain the per-shard key lists it restores into.
  view_.set_shard_map(ShardMap::by_edge_switch(tree_.topo));
  const Path p = path_between(tree_.hosts[0], tree_.hosts[1]);
  view_.add_flow(1, p, 8e6, 2e6);
  view_.begin_tentative();
  view_.drop_flow(1);
  view_.add_flow(2, p, 4e6, 1e6);
  view_.rollback_tentative();
  ASSERT_NE(view_.find(1), nullptr);
  EXPECT_EQ(view_.find(2), nullptr);
  // Shard bookkeeping stayed consistent: unloading the shard must remove
  // exactly the restored flow without tripping the key-list asserts.
  view_.unload_shard(view_.shard_map().shard_of_node(tree_.hosts[0]));
  EXPECT_EQ(view_.find(1), nullptr);
  EXPECT_EQ(view_.flow_count(), 0u);
}

}  // namespace
}  // namespace mayflower::net
