// Exhaustive wire round-trip coverage, generated from the Method enum.
//
// tools/gen_rpc_roundtrip.py joins every `enum class Method` enumerator in
// src/fs/rpc/messages.hpp against the RPC_METHODS contract table in
// tools/lint_invariants.py and emits one RPC_ROUNDTRIP(method, Req, Resp)
// line per method into rpc_roundtrip.gen.inc (built into the binary dir by
// CMake). Adding a Method without extending the table fails generation, so
// a new RPC cannot ship without round-trip coverage. The hand-written wire
// tests with interesting payloads stay in test_rpc.cpp; this file pins the
// *exhaustiveness* contract: every message type en/decodes cleanly, the
// decoder consumes exactly the encoded bytes, and re-encoding reproduces
// them byte for byte.
#include <gtest/gtest.h>

#include "fs/rpc/messages.hpp"

namespace mayflower::fs {
namespace {

// Stands in for the request/response side of methods that carry no body
// (e.g. kPing, kListFiles requests).
struct NoPayload {};

template <typename T>
void roundtrip_one(const char* method, const char* side) {
  const T original{};
  const Bytes wire = original.encode();
  Reader r(wire);
  const T decoded = T::decode(r);
  EXPECT_TRUE(r.ok()) << method << " " << side << ": decode failed";
  EXPECT_TRUE(r.at_end())
      << method << " " << side << ": decoder left trailing bytes";
  EXPECT_EQ(wire, decoded.encode())
      << method << " " << side << ": re-encode is not byte-identical";
}

template <>
void roundtrip_one<NoPayload>(const char*, const char*) {}

TEST(RpcRoundtripGenerated, EveryMethodRoundTrips) {
#define RPC_ROUNDTRIP(method, req, resp)  \
  roundtrip_one<req>(#method, "request"); \
  roundtrip_one<resp>(#method, "response");
#include "rpc_roundtrip.gen.inc"
#undef RPC_ROUNDTRIP
}

}  // namespace
}  // namespace mayflower::fs
