#include "flowserver/flow_state.hpp"

#include <gtest/gtest.h>

#include "net/paths.hpp"
#include "net/shard_map.hpp"
#include "net/topology.hpp"
#include "net/tree.hpp"

namespace mayflower::flowserver {
namespace {

sim::SimTime sec(double s) { return sim::SimTime::from_seconds(s); }

net::Path one_link_path(net::LinkId l) {
  net::Path p;
  p.links = {l};
  p.nodes = {0, 1};
  return p;
}

TEST(FlowStateTable, AddRegistersFrozenFlow) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  const TrackedFlow* f = t.find(1);
  ASSERT_NE(f, nullptr);
  EXPECT_DOUBLE_EQ(f->bw_bps, 10.0);
  EXPECT_DOUBLE_EQ(f->remaining_bytes, 100.0);
  EXPECT_TRUE(f->frozen);
  // Freeze horizon = expected completion: 100/10 = 10s.
  EXPECT_EQ(f->freeze_until, sec(10.0));
}

TEST(FlowStateTable, DropErases) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.drop(1);
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_EQ(t.size(), 0u);
  t.drop(1);  // idempotent
}

TEST(FlowStateTable, FrozenFlowIgnoresBandwidthSamples) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  // Poll at t=1: 5 bytes moved => measured 5 B/s, but the flow is frozen
  // until t=10, so bw stays at the estimate.
  t.update_from_stats(1, 5.0, sec(1.0));
  EXPECT_DOUBLE_EQ(t.find(1)->bw_bps, 10.0);
  // Remaining is refreshed regardless.
  EXPECT_DOUBLE_EQ(t.find(1)->remaining_bytes, 95.0);
}

TEST(FlowStateTable, ExpiredFreezeAcceptsSamples) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.update_from_stats(1, 5.0, sec(1.0));       // frozen, rejected
  t.update_from_stats(1, 60.0, sec(11.0));     // past freeze_until=10
  // Measured: (60-5)/(11-1) = 5.5 B/s.
  EXPECT_DOUBLE_EQ(t.find(1)->bw_bps, 5.5);
  EXPECT_FALSE(t.find(1)->frozen);
  EXPECT_DOUBLE_EQ(t.find(1)->remaining_bytes, 40.0);
}

TEST(FlowStateTable, SetBwRefreezes) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.update_from_stats(1, 50.0, sec(11.0));  // unfreezes (measured 50/11)
  ASSERT_FALSE(t.find(1)->frozen);
  t.setbw(1, 25.0, sec(11.0));
  const TrackedFlow* f = t.find(1);
  EXPECT_TRUE(f->frozen);
  EXPECT_DOUBLE_EQ(f->bw_bps, 25.0);
  // Horizon proportional to remaining (50) / bw (25) = 2s.
  EXPECT_EQ(f->freeze_until, sec(13.0));
}

TEST(FlowStateTable, FreezeDisabledAcceptsEverySample) {
  FlowStateTable t;
  t.set_freeze_enabled(false);
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  EXPECT_FALSE(t.find(1)->frozen);
  t.update_from_stats(1, 5.0, sec(1.0));
  EXPECT_DOUBLE_EQ(t.find(1)->bw_bps, 5.0);
  t.setbw(1, 42.0, sec(2.0));
  EXPECT_FALSE(t.find(1)->frozen);  // SETBW does not freeze either
}

TEST(FlowStateTable, StatsForUnknownCookieAreIgnored) {
  FlowStateTable t;
  t.update_from_stats(404, 10.0, sec(1.0));  // must not crash or create
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowStateTable, RemainingNeverGoesNegative) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.update_from_stats(1, 150.0, sec(1.0));  // counter overshoot
  EXPECT_DOUBLE_EQ(t.find(1)->remaining_bytes, 0.0);
}

TEST(FlowStateTable, ResizeAdjustsSizeRemainingAndHorizon) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.resize(1, 40.0, sec(0));
  const TrackedFlow* f = t.find(1);
  EXPECT_DOUBLE_EQ(f->size_bytes, 40.0);
  EXPECT_DOUBLE_EQ(f->remaining_bytes, 40.0);
  EXPECT_EQ(f->freeze_until, sec(4.0));
}

TEST(FlowStateTable, FlowsOnLinkFiltersByPath) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 10.0, 1.0, sec(0));
  t.add(2, one_link_path(1), 10.0, 1.0, sec(0));
  net::Path both;
  both.links = {0, 1};
  both.nodes = {0, 1, 2};
  t.add(3, both, 10.0, 1.0, sec(0));
  EXPECT_EQ(t.flows_on_link(0).size(), 2u);
  EXPECT_EQ(t.flows_on_link(1).size(), 2u);
  EXPECT_EQ(t.flows_on_link(7).size(), 0u);
}

TEST(FlowStateTable, FlowsOnPathDeduplicates) {
  FlowStateTable t;
  net::Path both;
  both.links = {0, 1};
  both.nodes = {0, 1, 2};
  t.add(1, both, 10.0, 1.0, sec(0));  // crosses both links of the query path
  EXPECT_EQ(t.flows_on_path(both).size(), 1u);
}

TEST(FlowStateTable, RemainingClampsAfterResizeOvershoot) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.update_from_stats(1, 60.0, sec(1.0));  // counter already carried 60
  t.resize(1, 40.0, sec(1.0));             // multi-read shrinks below that
  t.update_from_stats(1, 70.0, sec(2.0));  // next poll overshoots the size
  EXPECT_DOUBLE_EQ(t.find(1)->remaining_bytes, 0.0);
}

TEST(FlowStateTable, FlowsOnLinkIteratesInCookieOrder) {
  FlowStateTable t;
  t.add(9, one_link_path(0), 10.0, 1.0, sec(0));
  t.add(2, one_link_path(0), 10.0, 1.0, sec(0));
  t.add(5, one_link_path(0), 10.0, 1.0, sec(0));
  const auto flows = t.flows_on_link(0);
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[0]->cookie, 2u);
  EXPECT_EQ(flows[1]->cookie, 5u);
  EXPECT_EQ(flows[2]->cookie, 9u);
}

TEST(FlowStateTable, RollbackRestoresEveryMutationKind) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.add(2, one_link_path(1), 80.0, 8.0, sec(0));
  t.add(3, one_link_path(2), 60.0, 6.0, sec(0));

  t.begin_tentative();
  t.setbw(1, 3.0, sec(1.0));                    // update
  t.resize(1, 40.0, sec(1.0));                   // second touch, same entry
  t.drop(2);                                     // erase
  t.add(4, one_link_path(0), 50.0, 5.0, sec(1)); // insert
  t.update_from_stats(3, 30.0, sec(1.0));        // update via stats
  // Undo log is bounded by entries touched, not table size or touch count.
  EXPECT_EQ(t.tentative_touched(), 4u);
  t.rollback_tentative();

  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.find(1)->bw_bps, 10.0);
  EXPECT_DOUBLE_EQ(t.find(1)->size_bytes, 100.0);
  ASSERT_NE(t.find(2), nullptr);
  EXPECT_DOUBLE_EQ(t.find(2)->bw_bps, 8.0);
  EXPECT_DOUBLE_EQ(t.find(3)->remaining_bytes, 60.0);
  EXPECT_EQ(t.find(4), nullptr);
  // The link index rolled back too: cookie 4 is gone from link 0, cookie 2
  // is back on link 1.
  EXPECT_EQ(t.flows_on_link(0).size(), 1u);
  EXPECT_EQ(t.flows_on_link(1).size(), 1u);
  EXPECT_FALSE(t.tentative_active());
}

TEST(FlowStateTable, CommitKeepsTentativeMutations) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.begin_tentative();
  t.setbw(1, 3.0, sec(1.0));
  t.add(2, one_link_path(1), 50.0, 5.0, sec(1.0));
  t.commit_tentative();
  EXPECT_DOUBLE_EQ(t.find(1)->bw_bps, 3.0);
  ASSERT_NE(t.find(2), nullptr);
  EXPECT_EQ(t.flows_on_link(1).size(), 1u);
  EXPECT_FALSE(t.tentative_active());
}

TEST(FlowStateTable, RollbackOfDropThenReaddRestoresOriginal) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  t.begin_tentative();
  t.drop(1);
  t.add(1, one_link_path(2), 30.0, 3.0, sec(1.0));  // recycled cookie
  t.rollback_tentative();
  ASSERT_NE(t.find(1), nullptr);
  EXPECT_DOUBLE_EQ(t.find(1)->size_bytes, 100.0);
  EXPECT_EQ(t.flows_on_link(0).size(), 1u);
  EXPECT_EQ(t.flows_on_link(2).size(), 0u);
}

TEST(FlowStateTable, MutationsOutsideScopeAreNotLogged) {
  FlowStateTable t;
  t.add(1, one_link_path(0), 100.0, 10.0, sec(0));
  EXPECT_FALSE(t.tentative_active());
  t.begin_tentative();
  EXPECT_EQ(t.tentative_touched(), 0u);
  t.rollback_tentative();  // empty rollback is a no-op
  EXPECT_EQ(t.size(), 1u);
}

// --- sharded layout -------------------------------------------------------

class ShardedFlowStateTest : public ::testing::Test {
 protected:
  ShardedFlowStateTest()
      : tree_(net::build_three_tier(net::ThreeTierConfig{})) {
    table_.set_shard_map(net::ShardMap::by_edge_switch(tree_.topo));
  }

  net::Path path_between(net::NodeId a, net::NodeId b) {
    return net::shortest_paths(tree_.topo, a, b).at(0);
  }

  std::uint32_t shard_of_host(net::NodeId h) const {
    return table_.shard_map().shard_of_node(h);
  }

  net::ThreeTier tree_;
  FlowStateTable table_;
};

TEST_F(ShardedFlowStateTest, AddRoutesByPathSourceEdge) {
  ASSERT_GT(table_.shard_count(), 1u);
  const std::uint32_t s0 = shard_of_host(tree_.hosts[0]);
  const std::uint32_t s1 = shard_of_host(tree_.hosts[4]);
  ASSERT_NE(s0, s1);
  table_.add(1, path_between(tree_.hosts[0], tree_.hosts[1]), 100.0, 10.0,
             sec(0));
  // A cross-rack flow lives with its SOURCE edge (rack 0), not rack 1's.
  table_.add(2, path_between(tree_.hosts[0], tree_.hosts[4]), 100.0, 10.0,
             sec(0));
  table_.add(3, path_between(tree_.hosts[4], tree_.hosts[5]), 100.0, 10.0,
             sec(0));
  EXPECT_EQ(table_.shard_version(s0), 2u);
  EXPECT_EQ(table_.shard_version(s1), 1u);
  EXPECT_EQ(table_.version(), 3u);  // total = sum of shard versions
  EXPECT_EQ(table_.size(), 3u);
}

TEST_F(ShardedFlowStateTest, MutationsBumpOnlyTheirShard) {
  const std::uint32_t s0 = shard_of_host(tree_.hosts[0]);
  const std::uint32_t s1 = shard_of_host(tree_.hosts[4]);
  table_.add(1, path_between(tree_.hosts[0], tree_.hosts[1]), 100.0, 10.0,
             sec(0));
  table_.add(2, path_between(tree_.hosts[4], tree_.hosts[5]), 100.0, 10.0,
             sec(0));
  const std::uint64_t v0 = table_.shard_version(s0);
  const std::uint64_t v1 = table_.shard_version(s1);
  table_.setbw(2, 20.0, sec(1.0));
  EXPECT_EQ(table_.shard_version(s0), v0);
  EXPECT_EQ(table_.shard_version(s1), v1 + 1);
  table_.drop(1);
  EXPECT_EQ(table_.shard_version(s0), v0 + 1);
  EXPECT_EQ(table_.shard_version(s1), v1 + 1);
  EXPECT_EQ(table_.find(2)->path.nodes.front(), tree_.hosts[4]);
}

TEST_F(ShardedFlowStateTest, RollbackRestoresAcrossShards) {
  const std::uint32_t s0 = shard_of_host(tree_.hosts[0]);
  const std::uint32_t s2 = shard_of_host(tree_.hosts[8]);
  table_.add(1, path_between(tree_.hosts[0], tree_.hosts[1]), 100.0, 10.0,
             sec(0));
  table_.add(2, path_between(tree_.hosts[4], tree_.hosts[5]), 100.0, 10.0,
             sec(0));
  const std::uint64_t v2 = table_.shard_version(s2);

  table_.begin_tentative();
  table_.setbw(1, 99.0, sec(1.0));                            // mutate s0
  table_.drop(2);                                              // erase in s1
  table_.add(3, path_between(tree_.hosts[8], tree_.hosts[9]),  // insert in s2
             50.0, 5.0, sec(1.0));
  EXPECT_EQ(table_.tentative_touched(), 3u);
  table_.rollback_tentative();

  EXPECT_DOUBLE_EQ(table_.find(1)->bw_bps, 10.0);
  ASSERT_NE(table_.find(2), nullptr);
  EXPECT_EQ(table_.find(3), nullptr);
  // Rollback bumps exactly the shards it restored.
  EXPECT_EQ(table_.shard_version(s2), v2 + 2);  // insert + rollback erase
  // The aborted insert's route is gone: the cookie is reusable in ANY shard.
  table_.add(3, path_between(tree_.hosts[0], tree_.hosts[2]), 50.0, 5.0,
             sec(2.0));
  EXPECT_EQ(table_.shard_map().shard_of_path(table_.find(3)->path), s0);
}

TEST_F(ShardedFlowStateTest, FlowsOnLinkMergeAcrossShardsInCookieOrder) {
  // Two flows from DIFFERENT racks converge on host 8's downlink; the
  // cross-shard gather must still come back in cookie order.
  const net::Path a = path_between(tree_.hosts[0], tree_.hosts[8]);
  const net::Path b = path_between(tree_.hosts[4], tree_.hosts[8]);
  const net::LinkId down =
      tree_.topo.find_link(tree_.edge_of_host(tree_.hosts[8]), tree_.hosts[8]);
  ASSERT_EQ(a.links.back(), down);
  ASSERT_EQ(b.links.back(), down);
  table_.add(7, a, 100.0, 10.0, sec(0));  // higher cookie added first
  table_.add(3, b, 100.0, 10.0, sec(0));
  const auto on_link = table_.flows_on_link(down);
  ASSERT_EQ(on_link.size(), 2u);
  EXPECT_EQ(on_link[0]->cookie, 3u);
  EXPECT_EQ(on_link[1]->cookie, 7u);
}

TEST_F(ShardedFlowStateTest, SnapshotShardCopiesOneShard) {
  table_.add(1, path_between(tree_.hosts[0], tree_.hosts[1]), 100.0, 10.0,
             sec(0));
  table_.add(2, path_between(tree_.hosts[4], tree_.hosts[5]), 100.0, 10.0,
             sec(0));
  net::NetworkView view;
  view.reset_links(tree_.topo);
  view.set_shard_map(table_.shard_map());
  table_.snapshot_shard_into(view, shard_of_host(tree_.hosts[0]));
  EXPECT_NE(view.find(1), nullptr);
  EXPECT_EQ(view.find(2), nullptr);
  table_.snapshot_shard_into(view, shard_of_host(tree_.hosts[4]));
  EXPECT_NE(view.find(2), nullptr);
  EXPECT_EQ(view.flow_count(), 2u);
}

}  // namespace
}  // namespace mayflower::flowserver
