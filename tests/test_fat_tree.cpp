#include "net/fat_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/paths.hpp"

namespace mayflower::net {
namespace {

TEST(FatTree, K4Structure) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  EXPECT_EQ(t.hosts.size(), 16u);          // k^3/4
  EXPECT_EQ(t.edge_switches.size(), 8u);   // k * k/2
  EXPECT_EQ(t.agg_switches.size(), 4u);
  EXPECT_EQ(t.agg_switches[0].size(), 2u);
  EXPECT_EQ(t.core_switches.size(), 4u);   // (k/2)^2
  // Links: hosts 16 + edge-agg 8*2 + agg-core 8*2, duplex.
  EXPECT_EQ(t.topo.link_count(), 2u * (16 + 16 + 16));
}

TEST(FatTree, K8Structure) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 8});
  EXPECT_EQ(t.hosts.size(), 128u);
  EXPECT_EQ(t.core_switches.size(), 16u);
}

TEST(FatTree, EveryCoreReachesEveryPodOnce) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  for (const NodeId core : t.core_switches) {
    std::set<int> pods;
    for (const LinkId l : t.topo.out_links(core)) {
      pods.insert(t.topo.node(t.topo.link(l).to).pod);
    }
    EXPECT_EQ(pods.size(), 4u) << "core " << t.topo.node(core).name;
  }
}

TEST(FatTree, PathCounts) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  // Same edge: 1 x 2-link path.
  EXPECT_EQ(shortest_paths(t.topo, t.hosts[0], t.hosts[1]).size(), 1u);
  // Same pod, different edge: k/2 = 2 four-link paths.
  const auto same_pod = shortest_paths(t.topo, t.hosts[0], t.hosts[2]);
  EXPECT_EQ(same_pod.size(), 2u);
  EXPECT_EQ(same_pod[0].length(), 4u);
  // Cross-pod: (k/2)^2 = 4 six-link paths — the fat-tree's signature.
  const auto cross = shortest_paths(t.topo, t.hosts[0], t.hosts[4]);
  EXPECT_EQ(cross.size(), 4u);
  for (const Path& p : cross) EXPECT_EQ(p.length(), 6u);
}

TEST(FatTree, FullBisection) {
  // k/2 hosts per edge, k/2 uplinks per edge, uniform speed: any host set
  // can saturate its NICs across the core. Spot-check: every edge switch
  // has equal up and down capacity.
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  for (const NodeId edge : t.edge_switches) {
    double up = 0.0, down = 0.0;
    for (const LinkId l : t.topo.out_links(edge)) {
      const Node& peer = t.topo.node(t.topo.link(l).to);
      (peer.kind == NodeKind::kHost ? down : up) +=
          t.topo.link(l).capacity_bps;
    }
    EXPECT_DOUBLE_EQ(up, down);
  }
}

TEST(FatTree, K16Structure) {
  // The 1024-host datacenter fabric: k=16 -> k^3/4 hosts, k*(k/2) edge and
  // agg switches, (k/2)^2 cores, and 3 duplex link tiers of k^3/4 each.
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 16});
  EXPECT_EQ(t.hosts.size(), 1024u);
  EXPECT_EQ(t.edge_switches.size(), 128u);
  EXPECT_EQ(t.agg_switches.size(), 16u);
  EXPECT_EQ(t.agg_switches[0].size(), 8u);
  EXPECT_EQ(t.core_switches.size(), 64u);
  EXPECT_EQ(t.topo.node_count(), 1024u + 128u + 128u + 64u);
  EXPECT_EQ(t.topo.link_count(), 2u * 3u * 1024u);
}

TEST(FatTree, K32Structure) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 32});
  EXPECT_EQ(t.hosts.size(), 8192u);
  EXPECT_EQ(t.edge_switches.size(), 512u);
  EXPECT_EQ(t.core_switches.size(), 256u);
  EXPECT_EQ(t.topo.node_count(), 8192u + 512u + 512u + 256u);
  EXPECT_EQ(t.topo.link_count(), 2u * 3u * 8192u);
}

TEST(FatTree, K16PathCounts) {
  // ECMP fan-out at datacenter arity: k/2 same-pod paths, (k/2)^2 cross-pod.
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 16});
  EXPECT_EQ(shortest_paths(t.topo, t.hosts[0], t.hosts[1]).size(), 1u);
  const auto same_pod = shortest_paths(t.topo, t.hosts[0], t.hosts[8]);
  EXPECT_EQ(same_pod.size(), 8u);
  for (const Path& p : same_pod) EXPECT_EQ(p.length(), 4u);
  const auto cross = shortest_paths(t.topo, t.hosts[0], t.hosts[64]);
  EXPECT_EQ(cross.size(), 64u);
  for (const Path& p : cross) EXPECT_EQ(p.length(), 6u);
}

TEST(FatTree, ThreeTierAdapter) {
  // three_tier_from_fat_tree repackages the fat-tree for consumers of the
  // ThreeTier shape (harness, Flowserver ctor): same topology object, and
  // rack-major host order consistent with the synthesized config.
  const ThreeTier t = three_tier_from_fat_tree(FatTreeConfig{.k = 8});
  EXPECT_EQ(t.hosts.size(), 128u);
  EXPECT_EQ(t.edge_switches.size(), 32u);
  EXPECT_EQ(t.config.pods, 8u);
  EXPECT_EQ(t.config.racks_per_pod, 4u);
  EXPECT_EQ(t.config.hosts_per_rack, 4u);
  EXPECT_EQ(t.topo.link_count(), 2u * 3u * 128u);
  // Host i hangs off edge switch i / hosts_per_rack.
  for (std::size_t i = 0; i < t.hosts.size(); ++i) {
    EXPECT_EQ(t.edge_of_host(t.hosts[i]),
              t.edge_switches[i / t.config.hosts_per_rack]);
  }
}

TEST(FatTree, PodAndEdgeCoordinates) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  EXPECT_EQ(t.pod_of(t.hosts[0]), 0);
  EXPECT_EQ(t.pod_of(t.hosts[4]), 1);
  EXPECT_EQ(t.edge_index_of(t.hosts[0]), 0);
  EXPECT_EQ(t.edge_index_of(t.hosts[2]), 1);
}

}  // namespace
}  // namespace mayflower::net
