#include "net/fat_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/paths.hpp"

namespace mayflower::net {
namespace {

TEST(FatTree, K4Structure) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  EXPECT_EQ(t.hosts.size(), 16u);          // k^3/4
  EXPECT_EQ(t.edge_switches.size(), 8u);   // k * k/2
  EXPECT_EQ(t.agg_switches.size(), 4u);
  EXPECT_EQ(t.agg_switches[0].size(), 2u);
  EXPECT_EQ(t.core_switches.size(), 4u);   // (k/2)^2
  // Links: hosts 16 + edge-agg 8*2 + agg-core 8*2, duplex.
  EXPECT_EQ(t.topo.link_count(), 2u * (16 + 16 + 16));
}

TEST(FatTree, K8Structure) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 8});
  EXPECT_EQ(t.hosts.size(), 128u);
  EXPECT_EQ(t.core_switches.size(), 16u);
}

TEST(FatTree, EveryCoreReachesEveryPodOnce) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  for (const NodeId core : t.core_switches) {
    std::set<int> pods;
    for (const LinkId l : t.topo.out_links(core)) {
      pods.insert(t.topo.node(t.topo.link(l).to).pod);
    }
    EXPECT_EQ(pods.size(), 4u) << "core " << t.topo.node(core).name;
  }
}

TEST(FatTree, PathCounts) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  // Same edge: 1 x 2-link path.
  EXPECT_EQ(shortest_paths(t.topo, t.hosts[0], t.hosts[1]).size(), 1u);
  // Same pod, different edge: k/2 = 2 four-link paths.
  const auto same_pod = shortest_paths(t.topo, t.hosts[0], t.hosts[2]);
  EXPECT_EQ(same_pod.size(), 2u);
  EXPECT_EQ(same_pod[0].length(), 4u);
  // Cross-pod: (k/2)^2 = 4 six-link paths — the fat-tree's signature.
  const auto cross = shortest_paths(t.topo, t.hosts[0], t.hosts[4]);
  EXPECT_EQ(cross.size(), 4u);
  for (const Path& p : cross) EXPECT_EQ(p.length(), 6u);
}

TEST(FatTree, FullBisection) {
  // k/2 hosts per edge, k/2 uplinks per edge, uniform speed: any host set
  // can saturate its NICs across the core. Spot-check: every edge switch
  // has equal up and down capacity.
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  for (const NodeId edge : t.edge_switches) {
    double up = 0.0, down = 0.0;
    for (const LinkId l : t.topo.out_links(edge)) {
      const Node& peer = t.topo.node(t.topo.link(l).to);
      (peer.kind == NodeKind::kHost ? down : up) +=
          t.topo.link(l).capacity_bps;
    }
    EXPECT_DOUBLE_EQ(up, down);
  }
}

TEST(FatTree, PodAndEdgeCoordinates) {
  const FatTree t = build_fat_tree(FatTreeConfig{.k = 4});
  EXPECT_EQ(t.pod_of(t.hosts[0]), 0);
  EXPECT_EQ(t.pod_of(t.hosts[4]), 1);
  EXPECT_EQ(t.edge_index_of(t.hosts[0]), 0);
  EXPECT_EQ(t.edge_index_of(t.hosts[2]), 1);
}

}  // namespace
}  // namespace mayflower::net
