#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace mayflower {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBound)];
  }
  const double expected = kSamples / static_cast<double>(kBound);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double lambda = 0.07;
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / kSamples, 1.0 / lambda, 0.2);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(kSamples), 0.6, 0.015);
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.1);
  double sum = 0.0;
  for (std::size_t k = 0; k < 100; ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, PmfIsDecreasingPowerLaw) {
  const ZipfSampler zipf(1000, 1.1);
  for (std::size_t k = 1; k < 1000; ++k) {
    EXPECT_LT(zipf.pmf(k), zipf.pmf(k - 1));
  }
  // pmf(k) proportional to (k+1)^-1.1: check the ratio for a few ranks.
  EXPECT_NEAR(zipf.pmf(1) / zipf.pmf(0), std::pow(2.0, -1.1), 1e-9);
  EXPECT_NEAR(zipf.pmf(9) / zipf.pmf(4), std::pow(2.0, -1.1), 1e-9);
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  const ZipfSampler zipf(50, 1.1);
  Rng rng(23);
  constexpr int kSamples = 200000;
  std::vector<int> counts(50, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k : {0u, 1u, 5u, 20u}) {
    const double expected = zipf.pmf(k) * kSamples;
    EXPECT_NEAR(counts[k], expected, std::max(5 * std::sqrt(expected), 30.0))
        << "rank " << k;
  }
}

TEST(Zipf, SingleElementAlwaysRankZero) {
  const ZipfSampler zipf(1, 1.1);
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(PoissonProcess, ArrivalRateMatchesLambda) {
  PoissonProcess p(4.48, 31);  // 64 servers x lambda=0.07
  double last = 0.0;
  constexpr int kEvents = 100000;
  for (int i = 0; i < kEvents; ++i) last = p.next();
  EXPECT_NEAR(kEvents / last, 4.48, 0.15);
}

TEST(PoissonProcess, TimesStrictlyIncrease) {
  PoissonProcess p(10.0, 37);
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = p.next();
    EXPECT_GT(t, last);
    last = t;
  }
}

}  // namespace
}  // namespace mayflower
