#include "flowserver/multiread.hpp"

#include <gtest/gtest.h>

#include "figure2_fixture.hpp"

namespace mayflower::flowserver {
namespace {

using testing::Figure2;

TEST(MultiRead, SingleReplicaNeverSplits) {
  Figure2 fig;
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);
  MultiReadPlanner planner(selector);
  net::NetworkView view = fig.view();
  const auto plans = planner.plan_and_commit(view, fig.D, {fig.S}, 9.0,
                                             {900, 901}, sim::SimTime{});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_DOUBLE_EQ(plans[0].bytes, 9.0);
  EXPECT_NE(fig.table.find(900), nullptr);
  EXPECT_EQ(fig.table.find(901), nullptr);
}

TEST(MultiRead, SplitsWhenReplicasAvoidSharedBottleneck) {
  // Replica S behind Es (best share 3, as in Figure 2) and replica S2
  // behind Ed with a 6-unit uplink. Together: subflow1 = 6 via S2,
  // subflow2 = 3 via S => combined 9 > 6. Split expected, sized so both
  // subflows finish together.
  Figure2 fig;
  const net::NodeId s2 = fig.topo.add_node(net::NodeKind::kHost, "S2");
  fig.topo.add_duplex(s2, fig.Ed, 6.0);
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);
  MultiReadPlanner planner(selector);
  net::NetworkView view = fig.view();

  const auto plans = planner.plan_and_commit(view, fig.D, {fig.S, s2}, 9.0,
                                             {900, 901}, sim::SimTime{});
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_NE(plans[0].candidate.replica, plans[1].candidate.replica);

  // Greedy first pick: S2 at share 6; second subflow from S at share 3.
  EXPECT_EQ(plans[0].candidate.replica, s2);
  EXPECT_NEAR(plans[0].planned_bps, 6.0, 1e-9);
  EXPECT_EQ(plans[1].candidate.replica, fig.S);
  EXPECT_NEAR(plans[1].planned_bps, 3.0, 1e-9);

  // Sizes proportional to shares: 9 * 6/9 = 6 and 9 * 3/9 = 3.
  EXPECT_NEAR(plans[0].bytes, 6.0, 1e-9);
  EXPECT_NEAR(plans[1].bytes, 3.0, 1e-9);
  EXPECT_NEAR(plans[0].bytes + plans[1].bytes, 9.0, 1e-12);

  // Equal estimated finish times.
  EXPECT_NEAR(plans[0].bytes / plans[0].planned_bps,
              plans[1].bytes / plans[1].planned_bps, 1e-9);

  // Both flows registered with their split sizes.
  ASSERT_NE(fig.table.find(900), nullptr);
  ASSERT_NE(fig.table.find(901), nullptr);
  EXPECT_NEAR(fig.table.find(900)->size_bytes, 6.0, 1e-9);
  EXPECT_NEAR(fig.table.find(901)->size_bytes, 3.0, 1e-9);
}

TEST(MultiRead, RejectsSplitSharingTheBottleneck) {
  // Two replicas behind the same edge switch, and the client's access link
  // is the bottleneck: splitting cannot beat a single flow.
  net::Topology topo;
  const auto s1 = topo.add_node(net::NodeKind::kHost, "s1");
  const auto s2 = topo.add_node(net::NodeKind::kHost, "s2");
  const auto d = topo.add_node(net::NodeKind::kHost, "d");
  const auto es = topo.add_node(net::NodeKind::kEdgeSwitch, "es");
  const auto ed = topo.add_node(net::NodeKind::kEdgeSwitch, "ed");
  topo.add_duplex(s1, es, 10.0);
  topo.add_duplex(s2, es, 10.0);
  topo.add_duplex(es, ed, 10.0);
  topo.add_duplex(ed, d, 3.0);  // client bottleneck

  FlowStateTable table;
  net::PathCache cache(topo);
  ReplicaPathSelector selector(topo, cache, table);
  MultiReadPlanner planner(selector);
  net::NetworkView view = make_decision_view(topo, table);
  const auto plans = planner.plan_and_commit(view, d, {s1, s2}, 9.0,
                                             {900, 901}, sim::SimTime{});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_DOUBLE_EQ(plans[0].bytes, 9.0);
  EXPECT_NEAR(plans[0].planned_bps, 3.0, 1e-9);
  // The rejected tentative subflow left no residue.
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(901), nullptr);
}

TEST(MultiRead, SplitsAcrossFigure2sTwoAggPaths) {
  // Both replicas behind Es: paths via A and via B have *independent*
  // 3-share bottlenecks, so reading both in parallel doubles throughput.
  Figure2 fig;
  const net::NodeId s2 = fig.topo.add_node(net::NodeKind::kHost, "S2");
  fig.topo.add_duplex(s2, fig.Es, 10.0);
  net::PathCache cache(fig.topo);
  ReplicaPathSelector selector(fig.topo, cache, fig.table);
  MultiReadPlanner planner(selector);
  net::NetworkView view = fig.view();
  const auto plans = planner.plan_and_commit(view, fig.D, {fig.S, s2}, 9.0,
                                             {900, 901}, sim::SimTime{});
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_NEAR(plans[0].planned_bps + plans[1].planned_bps, 6.0, 1e-9);
  // 3:3 shares => even split.
  EXPECT_NEAR(plans[0].bytes, 4.5, 1e-9);
  EXPECT_NEAR(plans[1].bytes, 4.5, 1e-9);
}

TEST(MultiRead, SplitSizingIsConsistentWhenSubflowsShareTwoLinks) {
  // Both subflows funnel through the SAME two links (M->Ed and Ed->D), so
  // subflow 2's candidate computes subflow 1's reduced share across more
  // than one shared link. The bumped list must still carry exactly one
  // entry for subflow 1 (flows_on_path deduplicates; reduced_share mins
  // over all shared links) — the planner asserts that invariant, and the
  // split must tile the request and finish both legs together.
  //
  //   S1 --8--> M --10--> Ed --10--> D
  //   S2 --6--> M
  net::Topology topo;
  const auto s1 = topo.add_node(net::NodeKind::kHost, "S1");
  const auto s2 = topo.add_node(net::NodeKind::kHost, "S2");
  const auto d = topo.add_node(net::NodeKind::kHost, "D");
  const auto m = topo.add_node(net::NodeKind::kEdgeSwitch, "M");
  const auto ed = topo.add_node(net::NodeKind::kEdgeSwitch, "Ed");
  topo.add_duplex(s1, m, 8.0);
  topo.add_duplex(s2, m, 6.0);
  topo.add_duplex(m, ed, 10.0);
  topo.add_duplex(ed, d, 10.0);

  FlowStateTable table;
  net::PathCache cache(topo);
  ReplicaPathSelector selector(topo, cache, table);
  MultiReadPlanner planner(selector);

  const double request = 10.0;
  net::NetworkView view = make_decision_view(topo, table);
  const auto plans = planner.plan_and_commit(view, d, {s1, s2}, request,
                                             {900, 901}, sim::SimTime{});
  ASSERT_EQ(plans.size(), 2u);

  // Greedy pick: S1 at min(8,10,10) = 8. Subflow 2 from S2: max-min on the
  // shared 10-links gives each flow 5, access 6 => b2 = 5 and subflow 1 is
  // bumped 8 -> 5 (the same value on both shared links).
  EXPECT_EQ(plans[0].candidate.replica, s1);
  EXPECT_EQ(plans[1].candidate.replica, s2);
  EXPECT_NEAR(plans[0].planned_bps, 5.0, 1e-9);
  EXPECT_NEAR(plans[1].planned_bps, 5.0, 1e-9);

  // s1 + s2 tiles the request exactly...
  EXPECT_NEAR(plans[0].bytes + plans[1].bytes, request, 1e-12);
  EXPECT_NEAR(plans[0].bytes, 5.0, 1e-9);
  EXPECT_NEAR(plans[1].bytes, 5.0, 1e-9);
  // ...and both subflows finish together at their planned shares.
  EXPECT_NEAR(plans[0].bytes / plans[0].planned_bps,
              plans[1].bytes / plans[1].planned_bps, 1e-9);

  // The committed table agrees with the plan.
  ASSERT_NE(table.find(900), nullptr);
  ASSERT_NE(table.find(901), nullptr);
  EXPECT_NEAR(table.find(900)->bw_bps, 5.0, 1e-9);
  EXPECT_NEAR(table.find(900)->size_bytes, 5.0, 1e-9);
  EXPECT_NEAR(table.find(901)->size_bytes, 5.0, 1e-9);
}

}  // namespace
}  // namespace mayflower::flowserver
