#include "fs/kv/kvstore.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <vector>

#include "common/strings.hpp"

namespace mayflower::fs {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest() {
    dir_ = std::filesystem::temp_directory_path() /
           strfmt("mayflower-kv-test-%d-%s", static_cast<int>(::getpid()),
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  ~KvStoreTest() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(KvStoreTest, PutGetErase) {
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  EXPECT_TRUE(kv.put("a", "1"));
  EXPECT_TRUE(kv.put("b", "2"));
  EXPECT_EQ(kv.get("a"), "1");
  EXPECT_EQ(kv.get("b"), "2");
  EXPECT_FALSE(kv.get("c").has_value());
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_FALSE(kv.erase("a"));
  EXPECT_FALSE(kv.get("a").has_value());
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(KvStoreTest, OverwriteKeepsLatestValue) {
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  kv.put("k", "v1");
  kv.put("k", "v2");
  EXPECT_EQ(kv.get("k"), "v2");
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(KvStoreTest, SurvivesCloseAndReopen) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(dir_));
    kv.put("file/alpha", "meta-a");
    kv.put("file/beta", "meta-b");
    kv.erase("file/alpha");
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  EXPECT_EQ(kv.recovered_records(), 3u);  // two puts + one delete replayed
  EXPECT_FALSE(kv.get("file/alpha").has_value());
  EXPECT_EQ(kv.get("file/beta"), "meta-b");
}

TEST_F(KvStoreTest, ScanPrefixIsOrderedAndBounded) {
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  kv.put("f/c", "3");
  kv.put("f/a", "1");
  kv.put("g/x", "9");
  kv.put("f/b", "2");
  const auto rows = kv.scan_prefix("f/");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "f/a");
  EXPECT_EQ(rows[1].first, "f/b");
  EXPECT_EQ(rows[2].first, "f/c");
  EXPECT_TRUE(kv.scan_prefix("zzz").empty());
}

TEST_F(KvStoreTest, CompactionPreservesStateAndTruncatesWal) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(dir_));
    for (int i = 0; i < 100; ++i) {
      kv.put(strfmt("key%03d", i), strfmt("val%d", i));
    }
    EXPECT_TRUE(kv.compact());
    EXPECT_EQ(kv.wal_records(), 0u);
    kv.put("post-compact", "x");
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  EXPECT_EQ(kv.size(), 101u);
  EXPECT_EQ(kv.get("key042"), "val42");
  EXPECT_EQ(kv.get("post-compact"), "x");
}

TEST_F(KvStoreTest, AutoCompactionAfterThreshold) {
  KvStore::Options options;
  options.compact_after = 10;
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_, options));
  for (int i = 0; i < 25; ++i) kv.put(strfmt("k%d", i), "v");
  // At least two compactions happened; WAL stays short.
  EXPECT_LT(kv.wal_records(), 10u);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "SNAPSHOT"));
  EXPECT_EQ(kv.size(), 25u);
}

TEST_F(KvStoreTest, TornWalTailIsDiscardedButPrefixSurvives) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(dir_));
    kv.put("good1", "a");
    kv.put("good2", "b");
  }
  // Simulate a crash mid-write: append garbage that parses as a header but
  // fails the CRC.
  {
    std::ofstream wal(dir_ / "WAL", std::ios::binary | std::ios::app);
    const char garbage[] = "\x11\x22\x33\x44\x05\x00\x00\x00xy";
    wal.write(garbage, sizeof garbage - 1);
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  EXPECT_EQ(kv.get("good1"), "a");
  EXPECT_EQ(kv.get("good2"), "b");
  EXPECT_EQ(kv.size(), 2u);
  // The store stays writable after recovery.
  EXPECT_TRUE(kv.put("after", "c"));
}

TEST_F(KvStoreTest, CorruptMiddleRecordStopsReplayAtIt) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(dir_));
    kv.put("first", "1");
    kv.put("second", "2");
    kv.put("third", "3");
  }
  // Flip a byte inside the second record's payload.
  {
    std::fstream wal(dir_ / "WAL",
                     std::ios::binary | std::ios::in | std::ios::out);
    wal.seekp(30);
    wal.put('\xff');
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  // Crash-consistent prefix: everything from the corrupt record on is gone.
  EXPECT_LE(kv.size(), 2u);
  EXPECT_EQ(kv.get("first").has_value() || kv.size() == 0, true);
}

TEST_F(KvStoreTest, EmptyValueAndBinaryKeysRoundTrip) {
  std::string binary_key("\x00\x01\xffkey", 7);
  std::string binary_val("\xde\xad\xbe\xef", 4);
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(dir_));
    kv.put(binary_key, binary_val);
    kv.put("empty", "");
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  EXPECT_EQ(kv.get(binary_key), binary_val);
  EXPECT_EQ(kv.get("empty"), "");
}

TEST_F(KvStoreTest, ScanOrderDeterministicAcrossReopenAndCompaction) {
  // The metadata shards enumerate their slice with scan_prefix; list RPC
  // determinism rests on the iteration order being a pure function of the
  // key set, not of insertion order, reopen, or compaction history.
  const char* keys[] = {"f/m", "f/a", "f/z", "f/k", "f/b"};
  std::vector<std::string> first_order;
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(dir_));
    for (const char* k : keys) kv.put(k, "v");
    for (const auto& [key, value] : kv.scan_prefix("f/")) {
      first_order.push_back(key);
    }
    ASSERT_TRUE(std::is_sorted(first_order.begin(), first_order.end()));
    EXPECT_TRUE(kv.compact());
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  std::vector<std::string> reopened_order;
  for (const auto& [key, value] : kv.scan_prefix("f/")) {
    reopened_order.push_back(key);
  }
  EXPECT_EQ(first_order, reopened_order);
}

TEST_F(KvStoreTest, EraseMissingWritesNoWalRecord) {
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  kv.put("present", "v");
  const std::uint64_t wal_before = kv.wal_records();
  EXPECT_FALSE(kv.erase("absent"));
  EXPECT_EQ(kv.wal_records(), wal_before);  // no tombstone for a miss
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_EQ(kv.get("present"), "v");
}

TEST_F(KvStoreTest, RepeatedOverwriteKeepsOnlyLatestAfterReopen) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(dir_));
    for (int i = 0; i < 20; ++i) kv.put("hot", strfmt("v%d", i));
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_));
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_EQ(kv.get("hot"), "v19");
}

TEST_F(KvStoreTest, FsyncModeWorks) {
  KvStore::Options options;
  options.fsync = true;
  KvStore kv;
  ASSERT_TRUE(kv.open(dir_, options));
  EXPECT_TRUE(kv.put("durable", "yes"));
  EXPECT_EQ(kv.get("durable"), "yes");
}

}  // namespace
}  // namespace mayflower::fs
