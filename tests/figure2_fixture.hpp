// Shared fixture reproducing the worked example of Figure 2 (§4.2).
//
// A reader host D fetches 9 Mb from a replica source S. Two equal-length
// paths exist, via aggregation switch A ("first path") or B ("second path").
// All links are 10 Mbps unless overridden. Existing flows (remaining size
// 6 Mb each) populate the Flowserver's state table:
//
//   first path:  Es->A carries shares {2, 2, 6};  A->Ed carries {10}
//   second path: Es->B carries shares {2, 2, 4};  B->Ed carries {8}
//
// Expected costs: C1 = 9/3 + (6/3-6/6) + (6/7-6/10) = 4.257
//                 C2 = 9/3 + (6/3-6/4) + (6/7-6/8)  = 3.607
// With Es->A at 20 Mbps instead, C1 becomes 9/5 + (6/5-6/10) = 2.4 and the
// first path wins — both variants straight from the paper's prose.
//
// Units: the fixture works in Mb and Mbps directly; every quantity in the
// cost function is a ratio, so units cancel.
#pragma once

#include "flowserver/flow_state.hpp"
#include "flowserver/selector.hpp"
#include "net/paths.hpp"
#include "net/topology.hpp"

namespace mayflower::flowserver::testing {

struct Figure2 {
  net::Topology topo;
  net::NodeId S, D, Es, Ed, A, B;
  net::LinkId s_es, es_a, a_ed, ed_d, es_b, b_ed;
  FlowStateTable table;
  sdn::Cookie next_cookie = 100;

  // Cookies of the two "large" flows per path, for inspection.
  sdn::Cookie flow6 = 0, flow10 = 0, flow4 = 0, flow8 = 0;

  explicit Figure2(double cap_es_a = 10.0) {
    S = topo.add_node(net::NodeKind::kHost, "S");
    D = topo.add_node(net::NodeKind::kHost, "D");
    Es = topo.add_node(net::NodeKind::kEdgeSwitch, "Es");
    Ed = topo.add_node(net::NodeKind::kEdgeSwitch, "Ed");
    A = topo.add_node(net::NodeKind::kAggSwitch, "A");
    B = topo.add_node(net::NodeKind::kAggSwitch, "B");
    topo.add_duplex(S, Es, 10.0);
    topo.add_duplex(Es, A, cap_es_a);
    topo.add_duplex(A, Ed, 10.0);
    topo.add_duplex(Ed, D, 10.0);
    topo.add_duplex(Es, B, 10.0);
    topo.add_duplex(B, Ed, 10.0);
    s_es = topo.find_link(S, Es);
    es_a = topo.find_link(Es, A);
    a_ed = topo.find_link(A, Ed);
    ed_d = topo.find_link(Ed, D);
    es_b = topo.find_link(Es, B);
    b_ed = topo.find_link(B, Ed);

    // Existing flows: remaining 6 Mb at the quoted shares.
    add_tracked(es_a, 2.0);
    add_tracked(es_a, 2.0);
    flow6 = add_tracked(es_a, 6.0);
    flow10 = add_tracked(a_ed, 10.0);
    add_tracked(es_b, 2.0);
    add_tracked(es_b, 2.0);
    flow4 = add_tracked(es_b, 4.0);
    flow8 = add_tracked(b_ed, 8.0);
  }

  sdn::Cookie add_tracked(net::LinkId link, double bw) {
    net::Path p;
    p.links = {link};
    p.nodes = {topo.link(link).from, topo.link(link).to};
    const sdn::Cookie c = next_cookie++;
    table.add(c, std::move(p), /*size=*/6.0, /*est_bw=*/bw, sim::SimTime{});
    return c;
  }

  // Decision snapshot of the fixture's current table state (tests rebuild
  // one whenever they mutate the table directly).
  net::NetworkView view() const { return make_decision_view(topo, table); }

  net::Path path_via(net::NodeId agg) const {
    for (const net::Path& p : net::shortest_paths(topo, S, D)) {
      for (const net::NodeId n : p.nodes) {
        if (n == agg) return p;
      }
    }
    return {};
  }
};

}  // namespace mayflower::flowserver::testing
