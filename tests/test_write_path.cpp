// The write path as a first-class citizen of the decision pipeline:
// kPlanWrite chains (jointly-scheduled pipelined replication), write
// placement policies (model vs measured), determinism of write decisions
// across thread counts, and the chain-failure semantics — a failure at hop k
// degrades exactly the suffix, the client ack never hangs, and nameserver
// re-replication repairs the short replica afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "flowserver/flowserver.hpp"
#include "flowserver/writechain.hpp"
#include "fs/cluster.hpp"
#include "net/tree.hpp"
#include "obs/observability.hpp"
#include "policy/write_placement.hpp"

namespace mayflower {
namespace {

// --- Flowserver-level chain planning ---------------------------------------

struct ChainRig {
  sim::EventQueue events;
  net::ThreeTier tree;
  sdn::SdnFabric fabric;
  flowserver::Flowserver server;

  explicit ChainRig(flowserver::FlowserverConfig cfg = {})
      : tree(net::build_three_tier(net::ThreeTierConfig{})),
        fabric(events, tree.topo),
        server(fabric, cfg) {}
};

TEST(WriteChain, PlanRoutesEveryHopAtTheChainBottleneck) {
  ChainRig rig;
  const std::vector<net::NodeId> chain = {
      rig.tree.hosts[0], rig.tree.hosts[17], rig.tree.hosts[33],
      rig.tree.hosts[49]};
  const auto plan = rig.server.plan_write(chain, 256e6);
  ASSERT_EQ(plan.size(), 3u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    // Hop i runs chain[i] -> chain[i+1].
    EXPECT_EQ(plan[i].replica, chain[i]);
    ASSERT_FALSE(plan[i].path.nodes.empty());
    EXPECT_EQ(plan[i].path.nodes.front(), chain[i]);
    EXPECT_EQ(plan[i].path.nodes.back(), chain[i + 1]);
    EXPECT_EQ(plan[i].bytes, 256e6);
    // Every hop is pinned to the joint bottleneck, so the chain finishes
    // together (the write-side mirror of §4.3 split sizing).
    EXPECT_EQ(plan[i].est_bw_bps, plan[0].est_bw_bps);
    EXPECT_GT(plan[i].est_bw_bps, 0.0);
  }
  EXPECT_EQ(rig.server.write_chains(), 1u);
  EXPECT_EQ(rig.server.write_hops(), 3u);
  EXPECT_EQ(rig.server.write_truncated(), 0u);
  // Hop flows live in the believed-state table like any planned flow.
  EXPECT_EQ(rig.server.table().size(), 3u);
}

TEST(WriteChain, TruncatesAtTheFirstUnreachableHop) {
  ChainRig rig;
  const net::NodeId cut = rig.tree.hosts[33];
  rig.fabric.fail_switch(rig.tree.edge_of_host(cut));
  const std::vector<net::NodeId> chain = {
      rig.tree.hosts[0], rig.tree.hosts[17], cut, rig.tree.hosts[49]};
  const auto plan = rig.server.plan_write(chain, 64e6);
  // Hop 0 routes; hop 1 (into the dead edge) does not, and planning stops
  // there even though hop 2's endpoints are both alive.
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].replica, chain[0]);
  EXPECT_EQ(rig.server.write_truncated(), 1u);
}

TEST(WriteChain, WholeChainUnroutableReturnsEmpty) {
  ChainRig rig;
  const net::NodeId cut = rig.tree.hosts[17];
  rig.fabric.fail_switch(rig.tree.edge_of_host(cut));
  const auto plan =
      rig.server.plan_write({rig.tree.hosts[0], cut, rig.tree.hosts[49]},
                            64e6);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(rig.server.write_chains(), 0u);
}

// --- determinism across thread counts --------------------------------------

// A mixed read+write admission workload; the transcript captures every
// decision bit-exactly (hexfloat doubles, cookies, full paths).
std::string run_mixed_workload(std::size_t decision_threads,
                               std::size_t group, std::uint64_t seed) {
  constexpr int kRequests = 48;
  ChainRig rig([&] {
    flowserver::FlowserverConfig cfg;
    cfg.decision_threads = decision_threads;
    cfg.batch_size = group;
    return cfg;
  }());

  const std::size_t hosts = rig.tree.hosts.size();
  Rng rng(seed);
  std::vector<std::vector<flowserver::ReadAssignment>> plans(kRequests);
  int posted = 0;
  while (posted < kRequests) {
    const int n = static_cast<int>(std::min<std::size_t>(
        group, static_cast<std::size_t>(kRequests - posted)));
    for (int k = 0; k < n; ++k) {
      const int idx = posted + k;
      std::vector<net::NodeId> nodes;
      while (nodes.size() < 4) {
        const net::NodeId h = rig.tree.hosts[rng.next_below(hosts)];
        if (std::find(nodes.begin(), nodes.end(), h) == nodes.end()) {
          nodes.push_back(h);
        }
      }
      const double bytes = rng.uniform(64e6, 512e6);
      auto sink = [&plans, idx](std::vector<flowserver::ReadAssignment> p) {
        plans[static_cast<std::size_t>(idx)] = std::move(p);
      };
      if (idx % 3 == 0) {  // every third request is a write chain
        rig.server.enqueue_write(nodes, bytes, sink);
      } else {
        rig.server.enqueue_read(nodes[0], {nodes[1], nodes[2], nodes[3]},
                                bytes, sink);
      }
    }
    rig.server.drain();
    for (int k = posted; k < posted + n; ++k) {
      for (const auto& a : plans[static_cast<std::size_t>(k)]) {
        rig.fabric.start_flow(a.cookie, a.path, a.bytes, nullptr);
      }
    }
    posted += n;
    rig.server.collect_stats();
  }

  std::ostringstream out;
  out << std::hexfloat;
  for (int i = 0; i < kRequests; ++i) {
    out << "req " << i << "\n";
    for (const auto& a : plans[static_cast<std::size_t>(i)]) {
      out << "  cookie=" << a.cookie << " replica=" << a.replica
          << " bytes=" << a.bytes << " est=" << a.est_bw_bps << " path=";
      for (const net::NodeId node : a.path.nodes) out << node << ",";
      out << "\n";
    }
  }
  out << "chains=" << rig.server.write_chains()
      << " hops=" << rig.server.write_hops()
      << " truncated=" << rig.server.write_truncated()
      << " selections=" << rig.server.selections()
      << " table=" << rig.server.table().size() << "\n";
  return out.str();
}

TEST(WriteChain, DecisionsByteIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {0xbeefULL, 0x5ca1eULL}) {
    const std::string one = run_mixed_workload(1, 8, seed);
    EXPECT_NE(one.find("chains="), std::string::npos);
    for (const std::size_t threads : {2u, 8u}) {
      EXPECT_EQ(run_mixed_workload(threads, 8, seed), one)
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

TEST(WriteChain, BatchOfOneMatchesLegacySerialPipeline) {
  const std::string legacy = run_mixed_workload(0, 1, 0xbeefULL);
  for (const std::size_t threads : {1u, 8u}) {
    EXPECT_EQ(run_mixed_workload(threads, 1, 0xbeefULL), legacy)
        << "threads=" << threads;
  }
}

// --- placement policies -----------------------------------------------------

TEST(WritePlacement, FlagParsingRoundTrips) {
  using policy::WritePlacementKind;
  EXPECT_EQ(policy::parse_write_placement("model"),
            WritePlacementKind::kModel);
  EXPECT_EQ(policy::parse_write_placement("measured"),
            WritePlacementKind::kMeasured);
  EXPECT_EQ(policy::parse_write_placement("static"),
            WritePlacementKind::kStatic);
  EXPECT_FALSE(policy::parse_write_placement("bogus").has_value());
  EXPECT_STREQ(policy::to_string(WritePlacementKind::kMeasured), "measured");
}

TEST(WritePlacement, LegacyBestWriteTargetDrawsFromTheModelTiedBand) {
  ChainRig rig;
  const net::NodeId writer = rig.tree.hosts[0];
  std::vector<net::NodeId> pool = {rig.tree.hosts[5], rig.tree.hosts[21],
                                   rig.tree.hosts[37], rig.tree.hosts[53]};
  // An idle symmetric fabric: the model ties every remote candidate, and
  // best_write_target must pick within that band (seeded tie-break).
  const net::NodeId pick = rig.server.best_write_target(writer, pool);
  EXPECT_NE(std::find(pool.begin(), pool.end(), pick), pool.end());
}

TEST(WritePlacement, MeasuredRanksByResidualHeadroom) {
  net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  net::NetworkView view;
  view.reset_links(tree.topo);

  const net::NodeId writer = tree.hosts[0];
  const net::NodeId busy = tree.hosts[17];
  const net::NodeId idle = tree.hosts[33];
  // Saturate the busy candidate's access downlink: every path into it loses
  // its headroom, so measured ranking must prefer the idle host.
  view.set_tx_rate(tree.host_downlink(busy),
                   0.95 * view.capacity_bps(tree.host_downlink(busy)));

  net::PathCache paths(tree.topo);
  policy::MeasuredWritePlacement measured(paths);
  EXPECT_GT(measured.headroom(writer, idle, view),
            measured.headroom(writer, busy, view));
  const auto ranked = measured.rank(writer, {busy, idle}, view);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0], idle);

  // The writer itself always wins: a local replica needs no fabric at all.
  const auto local = measured.rank(writer, {busy, idle, writer}, view);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0], writer);
}

// --- cluster end-to-end ------------------------------------------------------

fs::ClusterConfig pipeline_config() {
  fs::ClusterConfig cfg;
  cfg.nameserver.chunk_size = 1000;
  cfg.client.replication = 3;
  cfg.seed = 5;
  cfg.write_pipeline = true;
  return cfg;
}

void run_until_done(fs::Cluster& cluster, const bool& flag,
                    double timeout_sec = 300.0) {
  while (!flag && !cluster.events().empty() &&
         cluster.events().now() < sim::SimTime::from_seconds(timeout_sec)) {
    cluster.events().step();
  }
  ASSERT_TRUE(flag) << "operation did not complete";
}

TEST(ClusterWritePath, PipelinedAppendReplicatesEverywhere) {
  obs::Observability hub;
  fs::ClusterConfig cfg = pipeline_config();
  cfg.obs = &hub;
  fs::Cluster cluster(cfg);
  fs::Client& client = cluster.client_at(cluster.tree().hosts[7]);
  bool done = false;
  fs::FileInfo created;
  client.create("chained", [&](fs::Status s, const fs::FileInfo& info) {
    ASSERT_EQ(s, fs::Status::kOk);
    created = info;
    client.append("chained", fs::ExtentList(fs::Extent::pattern(3, 2500)),
                  [&](fs::Status as, const fs::AppendResp& resp) {
                    EXPECT_EQ(as, fs::Status::kOk);
                    EXPECT_EQ(resp.new_size, 2500u);
                    done = true;
                  });
  });
  run_until_done(cluster, done);
  for (const net::NodeId rep : created.replicas) {
    const fs::Dataserver& ds = cluster.dataserver_at(rep);
    EXPECT_EQ(ds.file_size(created.uuid), 2500u);
  }
  // The relay really went down the chain path, and the Flowserver planned
  // it: both ends of the co-design observed the write.
  EXPECT_GE(cluster.dataserver_at(created.primary()).chain_appends(), 1u);
  EXPECT_GE(cluster.flow_server()->write_chains(), 1u);
  EXPECT_EQ(cluster.dataserver_at(created.primary()).relay_failures(), 0u);
  const std::string json = hub.to_json();
  EXPECT_NE(json.find("flowserver.write.chains"), std::string::npos);
  EXPECT_NE(json.find("fs.ds.chain_appends"), std::string::npos);
}

TEST(ClusterWritePath, PipelinedAppendWorksInProcessToo) {
  fs::ClusterConfig cfg = pipeline_config();
  cfg.flowserver_over_rpc = false;  // LocalWritePlanner route
  fs::Cluster cluster(cfg);
  fs::Client& client = cluster.client_at(cluster.tree().hosts[12]);
  bool done = false;
  client.create("local-plan", [&](fs::Status, const fs::FileInfo&) {
    client.append("local-plan", fs::ExtentList(fs::Extent::pattern(8, 900)),
                  [&](fs::Status as, const fs::AppendResp& resp) {
                    EXPECT_EQ(as, fs::Status::kOk);
                    EXPECT_EQ(resp.new_size, 900u);
                    done = true;
                  });
  });
  run_until_done(cluster, done);
  EXPECT_GE(cluster.flow_server()->write_chains(), 1u);
}

TEST(ClusterWritePath, WriterLocalPrimarySkipsTheUploadHop) {
  fs::ClusterConfig cfg = pipeline_config();
  fs::Cluster cluster(cfg);
  fs::Client& creator = cluster.client_at(cluster.tree().hosts[4]);
  bool created_ok = false;
  fs::FileInfo created;
  creator.create("home", [&](fs::Status s, const fs::FileInfo& info) {
    ASSERT_EQ(s, fs::Status::kOk);
    created = info;
    created_ok = true;
  });
  run_until_done(cluster, created_ok);

  // Append FROM the primary host: the chain starts at the primary, so the
  // plan carries relay hops only and no upload flow runs.
  fs::Client& local = cluster.client_at(created.primary());
  bool done = false;
  local.append("home", fs::ExtentList(fs::Extent::pattern(2, 1200)),
               [&](fs::Status as, const fs::AppendResp& resp) {
                 EXPECT_EQ(as, fs::Status::kOk);
                 EXPECT_EQ(resp.new_size, 1200u);
                 done = true;
               });
  run_until_done(cluster, done);
  for (const net::NodeId rep : created.replicas) {
    EXPECT_EQ(cluster.dataserver_at(rep).file_size(created.uuid), 1200u);
  }
  EXPECT_GE(cluster.dataserver_at(created.primary()).chain_appends(), 1u);
}

TEST(ClusterWritePath, HopFailureDegradesTheSuffixAndStillAcksTheClient) {
  fs::ClusterConfig cfg = pipeline_config();
  fs::Cluster cluster(cfg);
  fs::Client& client = cluster.client_at(cluster.tree().hosts[9]);
  bool created_ok = false;
  fs::FileInfo created;
  client.create("fragile", [&](fs::Status s, const fs::FileInfo& info) {
    ASSERT_EQ(s, fs::Status::kOk);
    created = info;
    created_ok = true;
  });
  run_until_done(cluster, created_ok);
  ASSERT_EQ(created.replicas.size(), 3u);

  // First relay target goes silent (reachable fabric, dead RPC server):
  // relay 0's ack fails, and the in-order gate must degrade relay 1 as well
  // — a settled chain is always a PREFIX of the replica list.
  cluster.dataserver_at(created.replicas[1]).detach();
  bool done = false;
  client.append("fragile", fs::ExtentList(fs::Extent::pattern(6, 2000)),
                [&](fs::Status as, const fs::AppendResp& resp) {
                  EXPECT_EQ(as, fs::Status::kOk) << "client ack must not hang";
                  EXPECT_EQ(resp.new_size, 2000u);
                  done = true;
                });
  run_until_done(cluster, done);

  const fs::Dataserver& primary = cluster.dataserver_at(created.primary());
  EXPECT_EQ(primary.file_size(created.uuid), 2000u);
  EXPECT_GE(primary.relay_failures(), 2u);  // both relays settled degraded
  cluster.dataserver_at(created.replicas[1]).attach();
  EXPECT_EQ(cluster.dataserver_at(created.replicas[1])
                .file_size(created.uuid),
            0u);
  EXPECT_EQ(cluster.dataserver_at(created.replicas[2])
                .file_size(created.uuid),
            0u);
}

TEST(ClusterWritePath, RereplicationRepairsAChainShortReplica) {
  fs::ClusterConfig cfg = pipeline_config();
  cfg.heartbeat_interval = sim::SimTime::from_seconds(1.0);
  fs::Cluster cluster(cfg);
  fs::Client& client = cluster.client_at(cluster.tree().hosts[10]);
  bool created_ok = false;
  fs::FileInfo created;
  client.create("healing", [&](fs::Status s, const fs::FileInfo& info) {
    ASSERT_EQ(s, fs::Status::kOk);
    created = info;
    created_ok = true;
  });
  run_until_done(cluster, created_ok);
  ASSERT_EQ(created.replicas.size(), 3u);
  const net::NodeId victim = created.replicas[1];

  fault::FaultPlan plan;
  plan.events.push_back(
      {cluster.events().now() + sim::SimTime::from_millis(100.0),
       fault::FaultKind::kDataserverCrash, net::kInvalidLink, victim});
  cluster.fault_injector().arm(plan);
  cluster.run_until(cluster.events().now() + sim::SimTime::from_millis(200.0));

  // Append into the degraded replica set: the chain truncates or degrades
  // at the dead hop, the ack still lands.
  bool wrote = false;
  client.append("healing", fs::ExtentList(fs::Extent::pattern(4, 3000)),
                [&](fs::Status as, const fs::AppendResp&) {
                  EXPECT_EQ(as, fs::Status::kOk);
                  wrote = true;
                });
  while (!wrote && !cluster.events().empty()) cluster.events().step();
  ASSERT_TRUE(wrote);

  // The monitor notices the dead server and re-replicates to full strength;
  // every *current* replica ends up with the complete bytes.
  cluster.run_until(cluster.events().now() + sim::SimTime::from_seconds(30.0));
  EXPECT_GE(cluster.nameserver().rereplications(), 1u);
  const auto after = cluster.nameserver().lookup("healing");
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->replicas.size(), 3u);
  EXPECT_EQ(std::find(after->replicas.begin(), after->replicas.end(), victim),
            after->replicas.end());
  for (const net::NodeId rep : after->replicas) {
    EXPECT_EQ(cluster.dataserver_at(rep).file_size(created.uuid), 3000u)
        << "replica on host " << rep;
  }
}

TEST(ClusterWritePath, StillbornFanoutRelayIsCountedNotSilent) {
  obs::Observability hub;
  fs::ClusterConfig cfg;
  cfg.nameserver.chunk_size = 1000;
  cfg.client.replication = 3;
  cfg.seed = 5;
  cfg.co_designed_writes = true;  // legacy fan-out with the write scheduler
  cfg.obs = &hub;
  fs::Cluster cluster(cfg);
  fs::Client& client = cluster.client_at(cluster.tree().hosts[3]);
  bool created_ok = false;
  fs::FileInfo created;
  client.create("stillborn", [&](fs::Status s, const fs::FileInfo& info) {
    ASSERT_EQ(s, fs::Status::kOk);
    created = info;
    created_ok = true;
  });
  run_until_done(cluster, created_ok);

  // Crash a secondary (downs its access links too): the scheduler finds no
  // path, the relay is stillborn — it must be counted, and the ack must
  // still reach the client.
  fault::FaultPlan plan;
  plan.events.push_back(
      {cluster.events().now() + sim::SimTime::from_millis(50.0),
       fault::FaultKind::kDataserverCrash, net::kInvalidLink,
       created.replicas[1]});
  cluster.fault_injector().arm(plan);
  cluster.run_until(cluster.events().now() + sim::SimTime::from_millis(100.0));

  bool done = false;
  client.append("stillborn", fs::ExtentList(fs::Extent::pattern(5, 1800)),
                [&](fs::Status as, const fs::AppendResp&) {
                  EXPECT_EQ(as, fs::Status::kOk);
                  done = true;
                });
  while (!done && !cluster.events().empty()) cluster.events().step();
  ASSERT_TRUE(done);
  EXPECT_GE(cluster.dataserver_at(created.primary()).relay_failures(), 1u);
  EXPECT_NE(hub.to_json().find("fs.ds.relay_failed"), std::string::npos);
}

}  // namespace
}  // namespace mayflower
