#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace mayflower {
namespace {

TEST(Percentile, ExactRanksAndInterpolation) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.125), 1.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.95), 42.0);
}

TEST(Summary, BasicMoments) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summary, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

// Reference values from standard t tables.
TEST(StudentT, CriticalValuesMatchTables) {
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.706, 5e-3);
  EXPECT_NEAR(student_t_critical(0.95, 5), 2.571, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 30), 2.042, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 1000), 1.962, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 10), 3.169, 1e-3);
  EXPECT_NEAR(student_t_critical(0.90, 20), 1.725, 1e-3);
}

TEST(StudentT, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_critical(0.95, 100000), 1.960, 2e-3);
}

TEST(MeanCI, ContainsTrueMeanMostOfTheTime) {
  Rng rng(101);
  int contained = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> samples;
    for (int i = 0; i < 30; ++i) {
      samples.push_back(5.0 + 2.0 * (rng.next_double() - 0.5));
    }
    const Interval ci = mean_confidence_interval(samples, 0.95);
    if (ci.lo <= 5.0 && 5.0 <= ci.hi) ++contained;
  }
  // 95% nominal coverage; allow generous slack for 400 trials.
  EXPECT_GE(contained, kTrials * 90 / 100);
}

TEST(MeanCI, WidthShrinksWithSamples) {
  Rng rng(103);
  auto draw = [&](int n) {
    std::vector<double> s;
    for (int i = 0; i < n; ++i) s.push_back(rng.next_double());
    const Interval ci = mean_confidence_interval(s);
    return ci.hi - ci.lo;
  };
  EXPECT_GT(draw(10), draw(10000));
}

TEST(Fieller, RatioOfIdenticalSamplesIsOne) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  const RatioInterval ri = fieller_ratio_interval(a, a);
  EXPECT_DOUBLE_EQ(ri.ratio, 1.0);
  EXPECT_TRUE(ri.bounded);
  EXPECT_LE(ri.lo, 1.0);
  EXPECT_GE(ri.hi, 1.0);
}

TEST(Fieller, IntervalContainsPointRatio) {
  Rng rng(107);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(3.0 + rng.next_double());
    b.push_back(1.0 + rng.next_double());
  }
  const RatioInterval ri = fieller_ratio_interval(a, b);
  EXPECT_TRUE(ri.bounded);
  EXPECT_LT(ri.lo, ri.ratio);
  EXPECT_GT(ri.hi, ri.ratio);
  EXPECT_NEAR(ri.ratio, 3.5 / 1.5, 0.2);
}

TEST(Fieller, UnboundedWhenDenominatorStraddlesZero) {
  // Denominator mean not significantly nonzero => g >= 1.
  const std::vector<double> a{1.0, 1.1, 0.9, 1.05, 0.95};
  const std::vector<double> b{-10.0, 10.0, -9.0, 9.0, 0.5};
  const RatioInterval ri = fieller_ratio_interval(a, b);
  EXPECT_FALSE(ri.bounded);
}

TEST(Fieller, TighterWithMoreSamples) {
  Rng rng(109);
  auto width = [&](int n) {
    std::vector<double> a, b;
    for (int i = 0; i < n; ++i) {
      a.push_back(2.0 + 0.5 * rng.next_double());
      b.push_back(1.0 + 0.5 * rng.next_double());
    }
    const RatioInterval ri = fieller_ratio_interval(a, b);
    return ri.hi - ri.lo;
  };
  EXPECT_GT(width(10), width(1000));
}

}  // namespace
}  // namespace mayflower
