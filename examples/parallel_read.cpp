// Multi-replica parallel reads (§4.3): when the Flowserver estimates that
// two subflows from different replicas beat one flow from the best replica,
// it splits the read and sizes the parts so both subflows finish together.
//
// The setup that makes splitting profitable: the reader sits in a pod with
// no replica, so every path crosses the oversubscribed core at 0.5 Gbps —
// but two replicas reached over *disjoint* core paths combine to the full
// 1 Gbps of the reader's access link. We run the same read with and without
// multiread to show the difference.
//
//   $ ./parallel_read
#include <algorithm>
#include <cstdio>

#include "fs/cluster.hpp"

using namespace mayflower;
using namespace mayflower::fs;

namespace {

double run_once(bool multiread, bool verbose) {
  ClusterConfig config;
  config.scheme = FsScheme::kMayflower;
  config.flowserver.multiread_enabled = multiread;
  config.nameserver.chunk_size = 256'000'000;
  config.seed = 11;
  Cluster cluster(config);
  const auto& tree = cluster.tree();

  Client& writer = cluster.client_at(tree.hosts[0]);
  double read_seconds = -1.0;

  writer.create("big.dat", [&](Status status, const FileInfo& info) {
    MAYFLOWER_ASSERT(status == Status::kOk);
    writer.append(
        "big.dat", ExtentList(Extent::pattern(1, 256'000'000)),
        [&, info](Status astatus, const AppendResp&) {
          MAYFLOWER_ASSERT(astatus == Status::kOk);

          // Pick a reader in a pod that holds no replica of the file: its
          // reads must cross the 8:1-oversubscribed core.
          net::NodeId reader_host = net::kInvalidNode;
          for (const net::NodeId h : tree.hosts) {
            const bool pod_has_replica = std::any_of(
                info.replicas.begin(), info.replicas.end(),
                [&](net::NodeId r) {
                  return tree.pod_of(r) == tree.pod_of(h);
                });
            if (!pod_has_replica) {
              reader_host = h;
              break;
            }
          }
          MAYFLOWER_ASSERT(reader_host != net::kInvalidNode);
          if (verbose) {
            std::printf("  replicas in pods %d, %d, %d; reader in pod %d\n",
                        tree.pod_of(info.replicas[0]),
                        tree.pod_of(info.replicas[1]),
                        tree.pod_of(info.replicas[2]),
                        tree.pod_of(reader_host));
          }

          Client& reader = cluster.client_at(reader_host);
          const double start = cluster.events().now().seconds();
          reader.read_file("big.dat", [&, start](Status rstatus,
                                                 ReadResult result) {
            MAYFLOWER_ASSERT(rstatus == Status::kOk);
            MAYFLOWER_ASSERT(result.data.size() == 256'000'000u);
            read_seconds = cluster.events().now().seconds() - start;
          });
        });
  });

  cluster.run_until(sim::SimTime::from_seconds(120.0));
  MAYFLOWER_ASSERT(read_seconds >= 0.0);

  if (auto* fsrv = cluster.flow_server()) {
    std::printf("  multiread %-8s: read completed in %6.2f s  "
                "(split reads: %llu)\n",
                multiread ? "ENABLED" : "disabled", read_seconds,
                static_cast<unsigned long long>(fsrv->split_reads()));
  }
  return read_seconds;
}

}  // namespace

int main() {
  std::printf(
      "Reading a 256 MB block from a pod that holds no replica: every path\n"
      "crosses a 0.5 Gbps core link, but two replicas over disjoint core\n"
      "paths aggregate to the reader's full 1 Gbps access link (§4.3).\n\n");
  const double with_split = run_once(true, true);
  const double without = run_once(false, false);
  std::printf("\n  speedup from multi-replica reads: %.2fx\n",
              without / with_split);
  return 0;
}
