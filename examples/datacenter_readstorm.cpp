// A read-heavy analytics cluster in one page: hundreds of clients fetch
// Zipf-popular 256 MB blocks at Poisson arrivals while the scheme under
// test decides which replica serves each read and over which path. Compares
// Mayflower's co-designed selection against the static baseline live.
//
//   $ ./datacenter_readstorm
#include <cstdio>

#include "harness/experiment.hpp"

using namespace mayflower;
using namespace mayflower::harness;

int main() {
  std::printf(
      "Simulating a 64-host datacenter under a read-heavy workload\n"
      "(400 files x 256 MB, Zipf 1.1 popularity, lambda = 0.09 jobs/s per\n"
      "server, 50%% of clients rack-local to the primary replica).\n\n");

  ExperimentConfig config;
  config.catalog.num_files = 400;
  config.gen.total_jobs = 800;
  config.gen.lambda_per_server = 0.09;
  config.warmup_jobs = 100;
  config.seed = 42;

  std::printf("%-22s %10s %10s %10s %12s\n", "scheme", "avg (s)", "p95 (s)",
              "max (s)", "split reads");
  for (const SchemeKind kind :
       {SchemeKind::kMayflower, SchemeKind::kSinbadMayflower,
        SchemeKind::kSinbadEcmp, SchemeKind::kNearestEcmp}) {
    config.scheme = kind;
    const RunResult result = run_experiment(config);
    std::printf("%-22s %10.2f %10.2f %10.2f %12llu\n", result.scheme.c_str(),
                result.summary.mean, result.summary.p95, result.summary.max,
                static_cast<unsigned long long>(result.split_reads));
  }

  std::printf(
      "\nEvery scheme saw the identical job trace; only replica/path\n"
      "decisions differ. See bench/fig4..fig8 for the full paper sweeps.\n");
  return 0;
}
