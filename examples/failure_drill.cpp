// Failure drill: exercises Mayflower's fault-tolerance story end to end.
//
//   1. write a replicated file,
//   2. kill the replica a reader would prefer — reads fail over to the
//      surviving replicas transparently,
//   3. crash-restart a disk-backed dataserver — it reloads its chunks from
//      the UUID-named directory layout,
//   4. wipe the nameserver's state (unclean restart) — it rebuilds the
//      file -> dataservers mappings by scanning every dataserver (§3.3.1).
//
//   $ ./failure_drill
#include <unistd.h>

#include <cstdio>

#include "common/strings.hpp"
#include "fs/cluster.hpp"

using namespace mayflower;
using namespace mayflower::fs;

int main() {
  const auto disk_root =
      std::filesystem::temp_directory_path() /
      strfmt("mayflower-drill-%d", static_cast<int>(::getpid()));
  std::filesystem::remove_all(disk_root);

  ClusterConfig config;
  config.scheme = FsScheme::kMayflower;
  config.nameserver.chunk_size = 64 * 1024;
  config.dataserver.disk_root = disk_root;  // real on-disk chunk files
  Cluster cluster(config);
  Client& client = cluster.client_at(cluster.tree().hosts[10]);

  const ExtentList payload(Extent::pattern(99, 200 * 1024));  // 4 chunks
  FileInfo file;

  std::printf("== 1. write a 3-way replicated file ==\n");
  client.create("survivor.dat", [&](Status s, const FileInfo& info) {
    MAYFLOWER_ASSERT(s == Status::kOk);
    file = info;
    client.append("survivor.dat", payload,
                  [&](Status as, const AppendResp& resp) {
                    MAYFLOWER_ASSERT(as == Status::kOk);
                    std::printf("wrote %llu bytes across %zu replicas\n",
                                static_cast<unsigned long long>(resp.new_size),
                                file.replicas.size());
                  });
  });
  cluster.run_until(sim::SimTime::from_seconds(10));

  std::printf("\n== 2. kill two of three replicas; read anyway ==\n");
  cluster.dataserver_at(file.replicas[0]).detach();
  cluster.dataserver_at(file.replicas[1]).detach();
  client.read_file("survivor.dat", [&](Status s, ReadResult r) {
    std::printf("read with 2/3 replicas down: %s, %llu bytes, content %s\n",
                to_string(s), static_cast<unsigned long long>(r.data.size()),
                r.data.content_equals(payload) ? "verified" : "CORRUPT");
  });
  cluster.run_until(sim::SimTime::from_seconds(20));

  std::printf("\n== 3. crash-restart a disk-backed dataserver ==\n");
  Dataserver& ds = cluster.dataserver_at(file.replicas[0]);
  ds.attach();
  ds.restart();  // drop memory, reload from <disk_root>/<uuid>/{meta,1,2,..}
  const ExtentList* reloaded = ds.file_data(file.uuid);
  std::printf("after restart: %llu bytes on disk, content %s\n",
              static_cast<unsigned long long>(ds.file_size(file.uuid)),
              reloaded != nullptr && reloaded->content_equals(payload)
                  ? "verified"
                  : "LOST");
  cluster.dataserver_at(file.replicas[1]).attach();

  std::printf("\n== 4. unclean nameserver restart: rebuild from scans ==\n");
  std::vector<net::NodeId> all_ds(cluster.tree().hosts.begin(),
                                  cluster.tree().hosts.end());
  cluster.nameserver().rebuild_from_dataservers(all_ds, [&] {
    const auto rebuilt = cluster.nameserver().lookup("survivor.dat");
    std::printf("rebuilt mapping: %s, size %llu, %zu replicas\n",
                rebuilt.has_value() ? "found" : "MISSING",
                static_cast<unsigned long long>(
                    rebuilt.has_value() ? rebuilt->size : 0),
                rebuilt.has_value() ? rebuilt->replicas.size() : 0);
    // Prove it is usable: a brand new client reads through the rebuilt map.
    cluster.client_at(cluster.tree().hosts[50])
        .read_file("survivor.dat", [&](Status s, ReadResult r) {
          std::printf("post-rebuild read: %s, content %s\n", to_string(s),
                      r.data.content_equals(payload) ? "verified"
                                                     : "CORRUPT");
        });
  });
  cluster.run_until(sim::SimTime::from_seconds(40));

  std::filesystem::remove_all(disk_root);
  return 0;
}
