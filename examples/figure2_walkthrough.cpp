// Walks through the paper's Figure 2 example line by line: a client reads
// 9 Mb from a replica over one of two equal-length paths; the Flowserver
// evaluates Eq. 2's cost for each and picks the cheaper one. Also shows the
// prose variant where the first path's second link has 20 Mbps capacity,
// flipping the decision.
//
//   $ ./figure2_walkthrough
#include <cstdio>

#include "flowserver/selector.hpp"
#include "net/paths.hpp"

using namespace mayflower;
using namespace mayflower::flowserver;

namespace {

struct Scenario {
  net::Topology topo;
  net::NodeId S, D, Es, Ed, A, B;
  FlowStateTable table;
  sdn::Cookie next_cookie = 1;

  explicit Scenario(double cap_es_a) {
    S = topo.add_node(net::NodeKind::kHost, "source");
    D = topo.add_node(net::NodeKind::kHost, "reader");
    Es = topo.add_node(net::NodeKind::kEdgeSwitch, "edge-src");
    Ed = topo.add_node(net::NodeKind::kEdgeSwitch, "edge-dst");
    A = topo.add_node(net::NodeKind::kAggSwitch, "agg-A");
    B = topo.add_node(net::NodeKind::kAggSwitch, "agg-B");
    topo.add_duplex(S, Es, 10.0);
    topo.add_duplex(Es, A, cap_es_a);
    topo.add_duplex(A, Ed, 10.0);
    topo.add_duplex(Ed, D, 10.0);
    topo.add_duplex(Es, B, 10.0);
    topo.add_duplex(B, Ed, 10.0);

    // Existing flows: 6 Mb remaining each, at the shares from the figure.
    track(topo.find_link(Es, A), 2.0);
    track(topo.find_link(Es, A), 2.0);
    track(topo.find_link(Es, A), 6.0);
    track(topo.find_link(A, Ed), 10.0);
    track(topo.find_link(Es, B), 2.0);
    track(topo.find_link(Es, B), 2.0);
    track(topo.find_link(Es, B), 4.0);
    track(topo.find_link(B, Ed), 8.0);
  }

  void track(net::LinkId link, double bw) {
    net::Path p;
    p.links = {link};
    p.nodes = {topo.link(link).from, topo.link(link).to};
    table.add(next_cookie++, std::move(p), 6.0, bw, sim::SimTime{});
  }

  void evaluate(const char* title) {
    std::printf("%s\n", title);
    BandwidthModel model;
    const net::NetworkView view = make_decision_view(topo, table);
    for (const net::Path& path : net::shortest_paths(topo, S, D)) {
      const Candidate c = evaluate_path(model, view, S, path, 9.0);
      std::string hops;
      for (const net::NodeId n : path.nodes) {
        if (!hops.empty()) hops += " -> ";
        hops += topo.node(n).name;
      }
      std::printf("  path %-55s est bw %.2f Mbps\n", hops.c_str(),
                  c.est_bw_bps);
      std::printf("    own completion  d/b        = 9 / %.2f  = %.3f s\n",
                  c.est_bw_bps, c.cost.own_time);
      std::printf("    impact on existing flows   = %.3f s\n", c.cost.impact);
      std::printf("    total cost                 = %.3f s\n", c.cost.total);
    }
    net::PathCache cache(topo);
    ReplicaPathSelector selector(topo, cache, table);
    const auto best = selector.select(view, D, {S}, 9.0);
    std::string via = "?";
    for (const net::NodeId n : best->path.nodes) {
      if (n == A) via = "agg-A (first path)";
      if (n == B) via = "agg-B (second path)";
    }
    std::printf("  => selected: %s (cost %.3f s)\n\n", via.c_str(),
                best->cost.total);
  }
};

}  // namespace

int main() {
  std::printf(
      "Figure 2 of the paper: a reader fetches 9 Mb over one of two paths.\n"
      "All links 10 Mbps; existing flows each have 6 Mb remaining.\n\n");

  Scenario base(10.0);
  base.evaluate("Base case (paper: C1 = 4.25, C2 = 3.6; second path wins):");

  Scenario wide(20.0);
  wide.evaluate(
      "Variant: first path's second link at 20 Mbps (paper: C1 becomes 2.4\n"
      "and the first path wins):");
  return 0;
}
