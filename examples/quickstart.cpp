// Quickstart: stand up a Mayflower cluster on a simulated 64-host
// datacenter, then create, append to, read back and delete a file through
// the client library. Everything below is the public API a downstream
// application would use.
//
//   $ ./quickstart
#include <cstdio>

#include "fs/cluster.hpp"

using namespace mayflower;
using namespace mayflower::fs;

int main() {
  // 1. A cluster: 4 pods x 4 racks x 4 hosts, 8:1 oversubscription, one
  //    dataserver per host, a nameserver, and the Flowserver running inside
  //    the SDN controller.
  ClusterConfig config;
  config.scheme = FsScheme::kMayflower;
  config.nameserver.chunk_size = 64 * 1024;  // small chunks for the demo
  Cluster cluster(config);

  // 2. A client on some host. The client library talks RPC to the
  //    nameserver/dataservers and consults the Flowserver on reads.
  Client& client = cluster.client_at(cluster.tree().hosts[13]);

  std::printf("== create ==\n");
  client.create("greetings.txt", [&](Status status, const FileInfo& info) {
    std::printf("create: %s, uuid=%s, replicas on %zu hosts\n",
                to_string(status), info.uuid.to_string().c_str(),
                info.replicas.size());
    for (const net::NodeId replica : info.replicas) {
      std::printf("  replica on %s%s\n",
                  cluster.tree().topo.node(replica).name.c_str(),
                  replica == info.primary() ? " (primary)" : "");
    }

    // 3. Append-only writes: the primary replica orders appends and relays
    //    them to the other replica hosts.
    client.append(
        "greetings.txt", ExtentList(Extent::from_bytes("hello, datacenter!")),
        [&](Status astatus, const AppendResp& resp) {
          std::printf("\n== append ==\nappend: %s at offset %llu, file now "
                      "%llu bytes\n",
                      to_string(astatus),
                      static_cast<unsigned long long>(resp.offset),
                      static_cast<unsigned long long>(resp.new_size));

          // 4. Reads go through the Flowserver: it picks the replica *and*
          //    the network path that minimize total completion time.
          client.read_file("greetings.txt", [&](Status rstatus,
                                                ReadResult result) {
            std::printf("\n== read ==\nread: %s, %llu bytes: \"%s\"\n",
                        to_string(rstatus),
                        static_cast<unsigned long long>(result.data.size()),
                        result.data.materialize().c_str());

            // 5. Clean up.
            client.remove("greetings.txt", [&](Status dstatus) {
              std::printf("\n== delete ==\ndelete: %s\n", to_string(dstatus));
            });
          });
        });
  });

  // Drive the simulated cluster until the workflow above finishes.
  cluster.run_until(sim::SimTime::from_seconds(10.0));

  std::printf("\nsimulated time elapsed: %.6f s\n",
              cluster.events().now().seconds());
  return 0;
}
