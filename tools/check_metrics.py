#!/usr/bin/env python3
"""Validate a mayflower_sim --metrics-out JSON document.

Checks structural invariants the exporter promises (ci.sh runs this on the
file it also diffs for determinism):

  * schema_version == 1, scheme is a non-empty string, runs is a list;
  * every run has an integer seed and an obs object with counters, gauges,
    histograms, flows, decisions and estimator_error;
  * histogram edges are strictly ascending, buckets == edges + 1, the
    bucket counts tile `count`, and min <= max when count > 0;
  * flow records carry the full trace schema with sane values
    (moved_bytes >= 0, end >= start for completed flows);
  * estimator_error and belief_error percentiles are ordered
    (p50 <= p90 <= p99 <= max);
  * when the sharded state plane exports its counters (--shard-metrics),
    the flowserver.shard.* family is complete and coherent: the shard-count
    gauge is present and >= 2, and per-shard reloads imply at least one
    prior full view build;
  * when the adaptive telemetry layer exports its counters (--poll-budget /
    --mouse-period), the flowserver.poll.* family is complete (five
    counters + two gauges, all-or-nothing) and coherent: budget deferrals
    and class transitions imply applied samples;
  * sdn.poller.ticks and sdn.poller.cycles are exported together and
    cycles <= ticks (a collection cycle is groups() staggered sub-ticks);
  * when a run carries a metadata-plane export (the optional per-run
    "meta_obs" object written for --meta-ops > 0), it passes the same
    structural checks as the main obs block and the meta.* family is
    complete: meta.shard.count gauge >= 1, one meta.shard.<i>.ops counter
    per shard, the router counters, the lookup-latency histogram, and the
    async-commit trio all-or-nothing;
  * when the write-path planner exports its counters (a planned chain —
    lazy registration makes the family appear as a unit), the
    flowserver.write.* family is complete (three counters + the bottleneck
    histogram, all-or-nothing) and coherent: every chain has at least one
    hop and exactly one bottleneck observation;
  * when a run carries a write-phase export (the optional per-run
    "write_obs" object written for --write-jobs > 0), it passes the same
    structural checks as the main obs block;
  * every exported counter/gauge/histogram name matches a pattern of its
    kind in REGISTERED_METRICS below — the same registry that
    tools/lint_invariants.py --check=metrics reconciles against the
    registration sites in src/ and the inventory tables in DESIGN.md.

Exit status 0 on success, 1 on any violation (all violations are listed).
"""
import json
import re
import sys

# ---------------------------------------------------------------------------
# The registry of every metric name src/ can register, one pattern per
# family. tools/lint_invariants.py --check=metrics holds this registry to
# account both ways: every registration in src/ must match a pattern here,
# every pattern here must be registered by some code, and DESIGN.md's
# metrics inventory must list exactly these patterns. At runtime (below),
# every name in an exported metrics JSON must match a pattern of its kind.
#
# Wildcards: <i> a decimal index, <method> an rpc::Method name (CamelCase),
# <kind> a FaultKind name (lowercase, hyphenated), <scope> one of
# METRIC_SCOPES (the nameserver metric_scope values).
METRIC_SCOPES = ("fs.nameserver", "meta.shard.<i>")

REGISTERED_METRICS = {
    # fluid network simulator
    "net.flowsim.incremental_solves": "counter",
    "net.flowsim.full_solves": "counter",
    "net.flowsim.handoff_solves": "counter",
    # harness + filesystem clients/servers
    "harness.read_retries": "counter",
    "fs.client.lookups": "counter",
    "fs.client.cache_hits": "counter",
    "fs.client.read_retries": "counter",
    "fs.client.retry_backoff_sec": "histogram",
    "fs.ds.relay_failed": "counter",
    "fs.ds.chain_appends": "counter",
    "<scope>.ops": "counter",
    "<scope>.probes_sent": "counter",
    "<scope>.rereplications": "counter",
    "<scope>.rpc.<method>": "counter",
    # flowserver (selection, telemetry, sharded state, write path)
    "flowserver.selections": "counter",
    "flowserver.split_reads": "counter",
    "flowserver.table.freeze_suppressed": "counter",
    "flowserver.poll.applied": "counter",
    "flowserver.poll.deferred_mouse": "counter",
    "flowserver.poll.deferred_budget": "counter",
    "flowserver.poll.promotions": "counter",
    "flowserver.poll.demotions": "counter",
    "flowserver.poll.elephants": "gauge",
    "flowserver.poll.mice": "gauge",
    "flowserver.poll.samples_per_tick": "histogram",
    "flowserver.shard.count": "gauge",
    "flowserver.shard.full_rebuilds": "counter",
    "flowserver.shard.reloads": "counter",
    "flowserver.shard.link_refreshes": "counter",
    "flowserver.write.chains": "counter",
    "flowserver.write.hops": "counter",
    "flowserver.write.truncated": "counter",
    "flowserver.write.bottleneck_bps": "histogram",
    # metadata plane (DESIGN.md §13)
    "meta.shard.count": "gauge",
    "meta.plane.failovers": "counter",
    "meta.router.map_fetches": "counter",
    "meta.router.wrong_shard_retries": "counter",
    "meta.lookup_latency_sec": "histogram",
    "meta.async.inflight": "gauge",
    "meta.async.committed": "counter",
    "meta.async.failed": "counter",
    # SDN fabric + stats poller
    "sdn.fabric.path_installs": "counter",
    "sdn.fabric.path_removes": "counter",
    "sdn.fabric.flows_started": "counter",
    "sdn.fabric.flows_completed": "counter",
    "sdn.fabric.flows_failed": "counter",
    "sdn.fabric.reroutes": "counter",
    "sdn.fabric.link_downs": "counter",
    "sdn.fabric.link_restores": "counter",
    "sdn.fabric.switch_wipes": "counter",
    "sdn.fabric.edge_polls": "counter",
    "sdn.poller.ticks": "counter",
    "sdn.poller.cycles": "counter",
    # fault injection
    "fault.injected.<kind>": "counter",
}

_WILDCARDS = {"<i>": r"\d+", "<method>": r"[A-Za-z]+", "<kind>": r"[a-z-]+"}


def _pattern_regexes():
    by_kind = {}
    for pattern, kind in REGISTERED_METRICS.items():
        expansions = ([pattern.replace("<scope>", s) for s in METRIC_SCOPES]
                      if "<scope>" in pattern else [pattern])
        for expanded in expansions:
            rx = re.escape(expanded)
            for token, sub in _WILDCARDS.items():
                rx = rx.replace(re.escape(token), sub)
            by_kind.setdefault(kind, []).append(rx)
    return {kind: re.compile(r"^(?:%s)$" % "|".join(rxs))
            for kind, rxs in by_kind.items()}


_KNOWN = _pattern_regexes()

FLOW_FIELDS = {
    "cookie", "planned_bw_bps", "planned_bytes", "start_sec", "end_sec",
    "realized_bw_bps", "moved_bytes", "resizes", "reroutes", "freeze_hits",
    "setbw_bumps", "split", "killed",
}
DECISION_FIELDS = {
    "time_sec", "candidates", "own_time_sec", "impact_sec", "frozen_flows",
    "freeze_suppressed", "split",
}
ERROR_FIELDS = {"count", "mean", "p50", "p90", "p99", "max"}

errors = []


def fail(msg):
    errors.append(msg)


def check_histogram(name, h, where):
    edges = h.get("edges")
    buckets = h.get("buckets")
    if not isinstance(edges, list) or not edges:
        fail(f"{where}: histogram {name!r} has no edges")
        return
    if any(lo >= hi for lo, hi in zip(edges, edges[1:])):
        fail(f"{where}: histogram {name!r} edges not strictly ascending")
    if not isinstance(buckets, list) or len(buckets) != len(edges) + 1:
        fail(f"{where}: histogram {name!r} needs len(edges)+1 buckets")
        return
    count = h.get("count", 0)
    if sum(buckets) != count:
        fail(f"{where}: histogram {name!r} buckets sum {sum(buckets)} "
             f"!= count {count}")
    if count > 0 and h.get("min", 0) > h.get("max", 0):
        fail(f"{where}: histogram {name!r} min > max")


def check_flow(i, flow, where):
    missing = FLOW_FIELDS - flow.keys()
    if missing:
        fail(f"{where}: flow[{i}] missing fields {sorted(missing)}")
        return
    if flow["moved_bytes"] < 0:
        fail(f"{where}: flow[{i}] negative moved_bytes")
    if flow["planned_bw_bps"] < 0 or flow["realized_bw_bps"] < 0:
        fail(f"{where}: flow[{i}] negative bandwidth")
    if not flow["killed"] and flow["end_sec"] < flow["start_sec"]:
        fail(f"{where}: flow[{i}] completed before it started")


def check_known_names(obs, where):
    """Every exported name must match a REGISTERED_METRICS pattern of the
    right kind — a rename or an unregistered addition fails here (and in
    lint_invariants --check=metrics at the registration site)."""
    for kind, key in (("counter", "counters"), ("gauge", "gauges"),
                      ("histogram", "histograms")):
        rx = _KNOWN.get(kind)
        for name in obs[key]:
            if rx is None or not rx.match(name):
                fail(f"{where}: {kind} {name!r} matches no "
                     f"REGISTERED_METRICS pattern of its kind")


def check_obs(obs, where):
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(obs.get(key), dict):
            fail(f"{where}: missing or non-object {key!r}")
            return
    check_known_names(obs, where)
    for name, value in obs["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{where}: counter {name!r} is not a non-negative integer")
    for name, h in obs["histograms"].items():
        check_histogram(name, h, where)
    flows = obs.get("flows")
    if not isinstance(flows, list):
        fail(f"{where}: missing 'flows' array")
    else:
        for i, flow in enumerate(flows):
            check_flow(i, flow, where)
    decisions = obs.get("decisions")
    if not isinstance(decisions, list):
        fail(f"{where}: missing 'decisions' array")
    else:
        for i, d in enumerate(decisions):
            missing = DECISION_FIELDS - d.keys()
            if missing:
                fail(f"{where}: decision[{i}] missing {sorted(missing)}")
    for block in ("estimator_error", "belief_error"):
        err = obs.get(block)
        if not isinstance(err, dict) or ERROR_FIELDS - err.keys():
            fail(f"{where}: malformed {block!r} block")
            continue
        if err["count"] < 0:
            fail(f"{where}: {block}.count negative")
        if not err["p50"] <= err["p90"] <= err["p99"] <= err["max"]:
            fail(f"{where}: {block} percentiles out of order")
    err = obs.get("estimator_error")
    if isinstance(err, dict) and err.get("count", 0) > 0 and not flows:
        fail(f"{where}: estimator errors without any finished flows")
    check_shard_family(obs, where)
    check_meta_family(obs, where)
    check_poll_family(obs, where)
    check_poller_cycles(obs, where)
    check_write_family(obs, where)


SHARD_COUNTERS = (
    "flowserver.shard.full_rebuilds",
    "flowserver.shard.reloads",
    "flowserver.shard.link_refreshes",
)


def check_shard_family(obs, where):
    """flowserver.shard.* is all-or-nothing and internally coherent."""
    counters = obs["counters"]
    gauges = obs["gauges"]
    present = [c for c in SHARD_COUNTERS if c in counters]
    has_gauge = "flowserver.shard.count" in gauges
    if not present and not has_gauge:
        return  # unsharded run (or shard metrics not exported): nothing due
    missing = [c for c in SHARD_COUNTERS if c not in counters]
    if missing:
        fail(f"{where}: partial flowserver.shard.* export, missing "
             f"{missing}")
    if not has_gauge:
        fail(f"{where}: flowserver.shard.* counters without a "
             f"'flowserver.shard.count' gauge")
        return
    shard_count = gauges["flowserver.shard.count"]
    if shard_count < 2:
        fail(f"{where}: shard metrics exported but shard count is "
             f"{shard_count} (sharding not in effect)")
    if counters.get("flowserver.shard.reloads", 0) > 0 and \
            counters.get("flowserver.shard.full_rebuilds", 0) < 1:
        fail(f"{where}: shard reloads without any prior full view build")


POLL_COUNTERS = (
    "flowserver.poll.applied",
    "flowserver.poll.deferred_mouse",
    "flowserver.poll.deferred_budget",
    "flowserver.poll.promotions",
    "flowserver.poll.demotions",
)
POLL_GAUGES = (
    "flowserver.poll.elephants",
    "flowserver.poll.mice",
)


def check_poll_family(obs, where):
    """flowserver.poll.* (adaptive telemetry, DESIGN.md §14) is
    all-or-nothing and internally coherent."""
    counters = obs["counters"]
    gauges = obs["gauges"]
    present = [c for c in POLL_COUNTERS if c in counters]
    present += [g for g in POLL_GAUGES if g in gauges]
    if not present:
        return  # adaptive telemetry off: nothing due
    missing = [c for c in POLL_COUNTERS if c not in counters]
    missing += [g for g in POLL_GAUGES if g not in gauges]
    if missing:
        fail(f"{where}: partial flowserver.poll.* export, missing {missing}")
        return
    # A budget deferral means the per-tick cap was hit, which requires the
    # tick to have applied at least that many samples first.
    if counters["flowserver.poll.deferred_budget"] > 0 and \
            counters["flowserver.poll.applied"] == 0:
        fail(f"{where}: budget deferrals without any applied samples")
    # Class counts move only through applied samples: a demotion (and any
    # later promotion) implies at least one applied classification.
    transitions = (counters["flowserver.poll.promotions"] +
                   counters["flowserver.poll.demotions"])
    if transitions > 0 and counters["flowserver.poll.applied"] == 0:
        fail(f"{where}: class transitions without any applied samples")


def check_poller_cycles(obs, where):
    """sdn.poller.cycles rides along with sdn.poller.ticks and can never
    exceed it (a cycle is groups() sub-ticks)."""
    counters = obs["counters"]
    has_ticks = "sdn.poller.ticks" in counters
    has_cycles = "sdn.poller.cycles" in counters
    if has_ticks != has_cycles:
        fail(f"{where}: sdn.poller.ticks and sdn.poller.cycles must be "
             f"exported together")
        return
    if has_cycles and counters["sdn.poller.cycles"] > \
            counters["sdn.poller.ticks"]:
        fail(f"{where}: sdn.poller.cycles exceeds sdn.poller.ticks")


WRITE_COUNTERS = (
    "flowserver.write.chains",
    "flowserver.write.hops",
    "flowserver.write.truncated",
)
WRITE_HISTOGRAM = "flowserver.write.bottleneck_bps"


def check_write_family(obs, where):
    """flowserver.write.* (write-chain planning, DESIGN.md §15) is
    all-or-nothing and internally coherent."""
    counters = obs["counters"]
    histograms = obs["histograms"]
    present = [c for c in WRITE_COUNTERS if c in counters]
    has_hist = WRITE_HISTOGRAM in histograms
    if not present and not has_hist:
        return  # no write was ever planned: nothing due
    missing = [c for c in WRITE_COUNTERS if c not in counters]
    if missing:
        fail(f"{where}: partial flowserver.write.* export, missing "
             f"{missing}")
    if not has_hist:
        fail(f"{where}: flowserver.write.* counters without a "
             f"{WRITE_HISTOGRAM!r} histogram")
        return
    if missing:
        return
    chains = counters["flowserver.write.chains"]
    hops = counters["flowserver.write.hops"]
    if hops < chains:
        fail(f"{where}: {hops} chain hops for {chains} chains "
             f"(every chain has at least one hop)")
    # The planner records exactly one joint-bottleneck observation per
    # successfully planned chain.
    hist_count = histograms[WRITE_HISTOGRAM].get("count", 0)
    if hist_count != chains:
        fail(f"{where}: {hist_count} bottleneck observations for "
             f"{chains} planned chains")


META_ROUTER_COUNTERS = (
    "meta.router.map_fetches",
    "meta.router.wrong_shard_retries",
)
META_ASYNC_KEYS = (
    "meta.async.inflight",       # gauge
    "meta.async.committed",      # counter
    "meta.async.failed",         # counter
)


def check_meta_family(obs, where):
    """meta.* is all-or-nothing and internally coherent."""
    counters = obs["counters"]
    gauges = obs["gauges"]
    histograms = obs["histograms"]
    any_meta = any(k.startswith("meta.")
                   for k in (*counters, *gauges, *histograms))
    if not any_meta:
        return  # run without a metadata plane: nothing due
    if "meta.shard.count" not in gauges:
        fail(f"{where}: meta.* metrics without a 'meta.shard.count' gauge")
        return
    shard_count = gauges["meta.shard.count"]
    if not isinstance(shard_count, int) or shard_count < 1:
        fail(f"{where}: meta.shard.count must be an integer >= 1, got "
             f"{shard_count!r}")
        return
    for i in range(shard_count):
        if f"meta.shard.{i}.ops" not in counters:
            fail(f"{where}: missing 'meta.shard.{i}.ops' counter "
                 f"(shard count says {shard_count})")
    missing = [c for c in META_ROUTER_COUNTERS if c not in counters]
    if missing:
        fail(f"{where}: partial meta.router.* export, missing {missing}")
    if "meta.plane.failovers" not in counters:
        fail(f"{where}: missing 'meta.plane.failovers' counter")
    if "meta.lookup_latency_sec" not in histograms:
        fail(f"{where}: missing 'meta.lookup_latency_sec' histogram")
    # Async-commit metrics only exist when --meta-async is on, but then the
    # whole trio must be there together.
    async_present = [k for k in META_ASYNC_KEYS
                     if k in counters or k in gauges]
    if async_present and len(async_present) != len(META_ASYNC_KEYS):
        absent = [k for k in META_ASYNC_KEYS if k not in async_present]
        fail(f"{where}: partial meta.async.* export, missing {absent}")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} METRICS_JSON", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot parse {sys.argv[1]}: {e}", file=sys.stderr)
        return 1

    if doc.get("schema_version") != 1:
        fail("schema_version != 1")
    scheme = doc.get("scheme")
    if not isinstance(scheme, str) or not scheme:
        fail("missing 'scheme' string")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("'runs' must be a non-empty array")
        runs = []
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run.get("seed"), int):
            fail(f"{where}: missing integer 'seed'")
        obs = run.get("obs")
        if not isinstance(obs, dict):
            fail(f"{where}: missing 'obs' object")
            continue
        check_obs(obs, where)
        meta_obs = run.get("meta_obs")
        if meta_obs is not None:
            mwhere = f"{where}.meta_obs"
            if not isinstance(meta_obs, dict):
                fail(f"{mwhere}: not an object")
                continue
            check_obs(meta_obs, mwhere)
            if not any(k.startswith("meta.")
                       for k in meta_obs.get("counters", {})):
                fail(f"{mwhere}: metadata export without any meta.* "
                     f"counters")
        write_obs = run.get("write_obs")
        if write_obs is not None:
            wwhere = f"{where}.write_obs"
            if not isinstance(write_obs, dict):
                fail(f"{wwhere}: not an object")
                continue
            check_obs(write_obs, wwhere)

    if errors:
        for e in errors:
            print(f"check_metrics: {e}", file=sys.stderr)
        return 1
    n_flows = sum(len(r["obs"]["flows"]) for r in runs)
    print(f"check_metrics: OK ({len(runs)} runs, {n_flows} flow traces, "
          f"scheme {scheme!r})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
