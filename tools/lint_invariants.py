#!/usr/bin/env python3
"""Invariant linter for the Mayflower tree (no clang required).

Three checks, each enforcing a repo-wide contract that a plain grep cannot
(the scanner strips comments and string literals first, so prose mentioning a
banned identifier does not trip the gate):

  boundary  Decision code reads only the NetworkView snapshot. The files
            that cost candidates and pick replicas/paths — and the sharded
            state plane they read through (shard map, view, flow table) —
            must never name raw fabric/simulator state (flow_sim,
            port_bytes, poll_port_stats, flow_record, switch_at).

  nondet    Nothing under src/ may introduce nondeterminism: no wall clocks,
            no unseeded randomness, no pointer-keyed ordered containers, and
            no range-for over std::unordered_* members (hash order leaks
            into iteration order). Deterministic replay is what makes every
            CI diff in ci.sh meaningful.

  guards    Every common::Mutex member must actually guard something: at
            least one GUARDED_BY(<name>) in the same file. And outside
            src/common/sync.hpp nothing uses std::mutex directly — raw
            mutexes are invisible to Clang Thread Safety Analysis.

Waivers: a comment containing "lint:allow(<check>)" suppresses that check's
findings on its own line and the next line. Waive sparingly and say why in
the same comment.

Usage:
  tools/lint_invariants.py [--check=boundary|nondet|guards|all] [--root=DIR]
  tools/lint_invariants.py --self-test     # run against tools/lint_fixtures
"""

import argparse
import os
import re
import sys

BOUNDARY_FILES = [
    "src/policy/replica_policy.cpp", "src/policy/replica_policy.hpp",
    "src/policy/scheme.cpp", "src/policy/scheme.hpp",
    "src/policy/hedera.cpp", "src/policy/hedera.hpp",
    "src/flowserver/selector.cpp", "src/flowserver/selector.hpp",
    "src/flowserver/multiread.cpp", "src/flowserver/multiread.hpp",
    "src/flowserver/bandwidth_model.cpp", "src/flowserver/bandwidth_model.hpp",
    # Adaptive telemetry (DESIGN.md §14) decides which poll samples to
    # apply from window rates the sweep hands it — pure bookkeeping that
    # must never reach into fabric or shard state itself.
    "src/flowserver/telemetry.cpp", "src/flowserver/telemetry.hpp",
    # Write-path decision code (DESIGN.md §15): chain planning and the
    # placement rankings are pure functions of the view — they must stay as
    # fabric-blind as read selection.
    "src/flowserver/writechain.cpp", "src/flowserver/writechain.hpp",
    "src/policy/write_placement.cpp", "src/policy/write_placement.hpp",
    # The sharded state plane: everything a decision reads flows through
    # these, so they must stay as fabric-blind as the decision code itself.
    "src/net/shard_map.cpp", "src/net/shard_map.hpp",
    "src/net/network_view.cpp", "src/net/network_view.hpp",
    "src/flowserver/flow_state.cpp", "src/flowserver/flow_state.hpp",
]
BOUNDARY_BANNED = ["flow_sim", "port_bytes", "poll_port_stats", "flow_record",
                   "switch_at"]
# The decision files proper (everything above the shard-plane block) must
# also never reach into shard bookkeeping: which shard a flow lives in and
# when a shard section reloads is the refresh path's business; decisions see
# one coherent view. Not applied to the shard-plane files, which define
# these operations. The metadata plane's routing internals (which nameserver
# owns a path, how adoption rebuilds a dead shard's keys) are banned for the
# same reason: decision code asks the router, never the shard map.
DECISION_FILE_COUNT = 18  # prefix of BOUNDARY_FILES the shard ban covers
SHARD_INTERNAL_BANNED = ["shard_of_node", "shard_of_path", "unload_shard",
                         "snapshot_shard_into", "shard_version",
                         "stamp_shard", "shard_stamp",
                         "owner_of_path", "adopt_from_dataservers"]

# Identifiers that smuggle wall-clock time or ambient randomness into a
# deterministic simulation. Rng (src/common/rng.hpp) is the one sanctioned
# randomness source: seeded, serializable, replayable.
NONDET_BANNED = [
    "system_clock", "steady_clock", "high_resolution_clock",
    "random_device", "gettimeofday", "clock_gettime", "localtime", "gmtime",
    "srand", "drand48",
]
# Bare rand( / time( need word-boundary care: "operand(", "runtime(" are fine.
NONDET_BANNED_CALLS = ["rand", "time"]

CHECKS = ("boundary", "nondet", "guards")


def strip_comments_and_strings(text):
    """Returns (code_lines, raw_lines): raw lines as-is, and the same lines
    with comments and string/char literal contents blanked out. Line count
    and column positions are preserved."""
    raw_lines = text.split("\n")
    out = []
    i = 0
    n = len(text)
    buf = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                buf.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append("'")
                i += 1
                continue
            buf.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                buf.append("\n")
            else:
                buf.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                buf.append("  ")
                i += 2
                continue
            buf.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                buf.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                buf.append(quote)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                buf.append("\n")
            else:
                buf.append(" ")
        i += 1
    return "".join(buf).split("\n"), raw_lines


def waived(raw_lines, lineno, check):
    """lint:allow(<check>) on this line or the previous one."""
    token = "lint:allow(%s)" % check
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines) and token in raw_lines[ln - 1]:
            return True
    return False


def iter_source_files(root, subdir="src"):
    for dirpath, _, filenames in sorted(os.walk(os.path.join(root, subdir))):
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                yield os.path.join(dirpath, name)


def check_boundary(root, findings, files=None):
    if files is not None:
        paths = [(p, True) for p in files]
    else:
        paths = [(os.path.join(root, f), i < DECISION_FILE_COUNT)
                 for i, f in enumerate(BOUNDARY_FILES)]
    pattern = re.compile(
        r"\b(%s)\b" % "|".join(re.escape(b) for b in BOUNDARY_BANNED))
    shard_pattern = re.compile(
        r"\b(%s)\b" % "|".join(re.escape(b) for b in SHARD_INTERNAL_BANNED))
    for path, decision_file in paths:
        if not os.path.exists(path):
            findings.append((path, 0, "boundary",
                             "expected decision-boundary file is missing"))
            continue
        with open(path, encoding="utf-8") as f:
            code, raw = strip_comments_and_strings(f.read())
        for idx, line in enumerate(code, start=1):
            if waived(raw, idx, "boundary"):
                continue
            m = pattern.search(line)
            if m:
                findings.append((path, idx, "boundary",
                                 "decision code names raw fabric/sim state "
                                 "'%s'" % m.group(1)))
                continue
            if decision_file:
                m = shard_pattern.search(line)
                if m:
                    findings.append((path, idx, "boundary",
                                     "decision code reaches into shard "
                                     "bookkeeping '%s'" % m.group(1)))


def unordered_members(code_lines):
    """Names declared as std::unordered_map/set members (trailing '_')."""
    decl = re.compile(
        r"std::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+_)\s*[;{=]")
    names = set()
    for line in code_lines:
        for m in decl.finditer(line):
            names.add(m.group(1))
    return names


def check_nondet(root, findings, files=None):
    paths = list(files) if files is not None else list(iter_source_files(root))
    banned = re.compile(
        r"\b(%s)\b" % "|".join(re.escape(b) for b in NONDET_BANNED))
    banned_call = re.compile(
        r"(?<![\w:.>])(%s)\s*\(" % "|".join(NONDET_BANNED_CALLS))
    ptr_key = re.compile(r"std::(?:map|set)\s*<[^,>]*\*")
    for path in paths:
        with open(path, encoding="utf-8") as f:
            code, raw = strip_comments_and_strings(f.read())
        unordered = unordered_members(code)
        range_for = None
        if unordered:
            range_for = re.compile(
                r"for\s*\(.*:\s*(?:\w+[.->]+)?(%s)\s*\)" %
                "|".join(re.escape(u) for u in unordered))
        for idx, line in enumerate(code, start=1):
            if waived(raw, idx, "nondet"):
                continue
            m = banned.search(line)
            if m:
                findings.append((path, idx, "nondet",
                                 "nondeterministic source '%s'" % m.group(1)))
                continue
            m = banned_call.search(line)
            if m:
                findings.append((path, idx, "nondet",
                                 "call to '%s()' (wall clock / ambient "
                                 "randomness)" % m.group(1)))
                continue
            if ptr_key.search(line):
                findings.append((path, idx, "nondet",
                                 "pointer-keyed ordered container (iteration "
                                 "order follows the allocator)"))
                continue
            if range_for is not None:
                m = range_for.search(line)
                if m:
                    findings.append((path, idx, "nondet",
                                     "range-for over unordered member '%s' "
                                     "(hash order is not deterministic)" %
                                     m.group(1)))


def check_guards(root, findings, files=None):
    paths = list(files) if files is not None else list(iter_source_files(root))
    mutex_decl = re.compile(r"common::Mutex\s+(\w+)\s*;")
    std_mutex = re.compile(r"\bstd::(?:mutex|recursive_mutex|shared_mutex)\b")
    for path in paths:
        with open(path, encoding="utf-8") as f:
            code, raw = strip_comments_and_strings(f.read())
        text = "\n".join(code)
        for idx, line in enumerate(code, start=1):
            if path.replace("\\", "/").endswith("src/common/sync.hpp"):
                break  # the wrapper itself legitimately holds a std::mutex
            if std_mutex.search(line) and not waived(raw, idx, "guards"):
                findings.append((path, idx, "guards",
                                 "raw std::mutex is invisible to thread "
                                 "safety analysis; use common::Mutex"))
        for idx, line in enumerate(code, start=1):
            m = mutex_decl.search(line)
            if m is None or waived(raw, idx, "guards"):
                continue
            name = m.group(1)
            if "GUARDED_BY(%s)" % name not in text and \
               "PT_GUARDED_BY(%s)" % name not in text:
                findings.append((path, idx, "guards",
                                 "mutex '%s' guards no member: annotate the "
                                 "state it protects with GUARDED_BY(%s)" %
                                 (name, name)))


def run_checks(root, which, files=None):
    findings = []
    if which in ("boundary", "all"):
        check_boundary(root, findings, files)
    if which in ("nondet", "all"):
        check_nondet(root, findings, files)
    if which in ("guards", "all"):
        check_guards(root, findings, files)
    return findings


def self_test(root):
    """The fixtures encode the linter's own contract: every *_bad_* marker
    line must be flagged, everything in good.cpp must pass."""
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    failures = []

    good = os.path.join(fixture_dir, "good.cpp")
    got = run_checks(root, "all", files=[good])
    got += run_checks(root, "boundary", files=[good])
    for f in got:
        failures.append("good.cpp flagged: %s:%d [%s] %s" % f)

    expectations = {
        "bad_boundary.cpp": ("boundary", 5),
        "bad_nondet.cpp": ("nondet", 4),
        "bad_guards.cpp": ("guards", 2),
    }
    for name, (check, want) in sorted(expectations.items()):
        path = os.path.join(fixture_dir, name)
        got = run_checks(root, check, files=[path])
        if len(got) != want:
            failures.append(
                "%s: expected %d %s findings, got %d: %r" %
                (name, want, check, len(got), got))

    if failures:
        for f in failures:
            print("SELF-TEST FAIL: %s" % f, file=sys.stderr)
        return 1
    print("self-test OK (%d fixtures)" % (len(expectations) + 1))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--check", default="all",
                    choices=list(CHECKS) + ["all"])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.root)

    findings = run_checks(args.root, args.check)
    for path, lineno, check, msg in findings:
        rel = os.path.relpath(path, args.root)
        print("%s:%d: [%s] %s" % (rel, lineno, check, msg), file=sys.stderr)
    if findings:
        print("%d invariant violation(s)" % len(findings), file=sys.stderr)
        return 1
    print("lint_invariants: %s clean" % args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
