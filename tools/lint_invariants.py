#!/usr/bin/env python3
"""Cross-layer contract analyzer for the Mayflower tree (no clang required).

Eight checks, each enforcing a repo-wide contract that a plain grep cannot
(the scanner strips comments and string literals first, so prose mentioning a
banned identifier does not trip the gate):

  boundary  Decision code reads only the NetworkView snapshot. The files
            that cost candidates and pick replicas/paths — and the sharded
            state plane they read through (shard map, view, flow table) —
            must never name raw fabric/simulator state (flow_sim,
            port_bytes, poll_port_stats, flow_record, switch_at).

  nondet    Nothing under src/ may introduce nondeterminism: no wall clocks,
            no unseeded randomness, no pointer-keyed ordered containers, and
            no range-for over std::unordered_* members (hash order leaks
            into iteration order). Deterministic replay is what makes every
            CI diff in ci.sh meaningful.

  guards    Every common::Mutex member must actually guard something: at
            least one GUARDED_BY(<name>) in the same file. And outside
            src/common/sync.hpp nothing uses std::mutex directly — raw
            mutexes are invisible to Clang Thread Safety Analysis.

  rpc       The wire contract is exhaustive: every rpc::Method enumerator
            appears in RPC_METHODS below, its request/response structs have
            encode + decode in src/fs/rpc/messages.*, it has a dispatch arm
            in exactly the server file(s) that own it, and the generated
            round-trip test (tools/gen_rpc_roundtrip.py, driven by the same
            RPC_METHODS table) covers it.

  metrics   Every metric name registered in src/ matches a pattern in
            tools/check_metrics.py REGISTERED_METRICS, every pattern is
            registered by some code, every metric-name string check_metrics
            validates is a registered pattern, and the DESIGN.md metrics
            inventory (between metrics-inventory markers) lists exactly the
            registered patterns. Metric names must carry canonical unit
            suffixes.

  flagdoc   Every CLI flag mayflower_sim.cpp validates is documented in the
            README flag table (between flag-table markers) and vice versa.

  units     Identifiers carrying units use the canonical suffixes _bps,
            _bytes, _sec, _us: the non-canonical spellings (_seconds, _ms,
            _bw, ...) are banned across src/ tools/ tests/ bench/.
            common::units (Bps, Bytes) provides the strong-typedef seed.

  lockorder The lock acquisition graph — ACQUIRED_BEFORE/ACQUIRED_AFTER
            annotations plus MutexLock nesting observed in code — must be
            acyclic. A cycle is a latent deadlock.

Waivers: a comment containing "lint:allow(<check>)" suppresses that check's
findings on its own line and the next line. Waive sparingly and say why in
the same comment. --max-waivers=N fails the run when the tree carries more
than N waivers (fixtures excluded), so suppressions cannot accumulate
silently.

Usage:
  tools/lint_invariants.py [--check=<name>|all] [--root=DIR] [--max-waivers=N]
  tools/lint_invariants.py --self-test     # run against tools/lint_fixtures
"""

import argparse
import ast
import os
import re
import sys

BOUNDARY_FILES = [
    "src/policy/replica_policy.cpp", "src/policy/replica_policy.hpp",
    "src/policy/scheme.cpp", "src/policy/scheme.hpp",
    "src/policy/hedera.cpp", "src/policy/hedera.hpp",
    "src/flowserver/selector.cpp", "src/flowserver/selector.hpp",
    "src/flowserver/multiread.cpp", "src/flowserver/multiread.hpp",
    "src/flowserver/bandwidth_model.cpp", "src/flowserver/bandwidth_model.hpp",
    # Adaptive telemetry (DESIGN.md §14) decides which poll samples to
    # apply from window rates the sweep hands it — pure bookkeeping that
    # must never reach into fabric or shard state itself.
    "src/flowserver/telemetry.cpp", "src/flowserver/telemetry.hpp",
    # Write-path decision code (DESIGN.md §15): chain planning and the
    # placement rankings are pure functions of the view — they must stay as
    # fabric-blind as read selection.
    "src/flowserver/writechain.cpp", "src/flowserver/writechain.hpp",
    "src/policy/write_placement.cpp", "src/policy/write_placement.hpp",
    # The sharded state plane: everything a decision reads flows through
    # these, so they must stay as fabric-blind as the decision code itself.
    "src/net/shard_map.cpp", "src/net/shard_map.hpp",
    "src/net/network_view.cpp", "src/net/network_view.hpp",
    "src/flowserver/flow_state.cpp", "src/flowserver/flow_state.hpp",
]
BOUNDARY_BANNED = ["flow_sim", "port_bytes", "poll_port_stats", "flow_record",
                   "switch_at"]
# The decision files proper (everything above the shard-plane block) must
# also never reach into shard bookkeeping: which shard a flow lives in and
# when a shard section reloads is the refresh path's business; decisions see
# one coherent view. Not applied to the shard-plane files, which define
# these operations. The metadata plane's routing internals (which nameserver
# owns a path, how adoption rebuilds a dead shard's keys) are banned for the
# same reason: decision code asks the router, never the shard map.
DECISION_FILE_COUNT = 18  # prefix of BOUNDARY_FILES the shard ban covers
SHARD_INTERNAL_BANNED = ["shard_of_node", "shard_of_path", "unload_shard",
                         "snapshot_shard_into", "shard_version",
                         "stamp_shard", "shard_stamp",
                         "owner_of_path", "adopt_from_dataservers"]

# Identifiers that smuggle wall-clock time or ambient randomness into a
# deterministic simulation. Rng (src/common/rng.hpp) is the one sanctioned
# randomness source: seeded, serializable, replayable.
NONDET_BANNED = [
    "system_clock", "steady_clock", "high_resolution_clock",
    "random_device", "gettimeofday", "clock_gettime", "localtime", "gmtime",
    "srand", "drand48",
]
# Bare rand( / time( need word-boundary care: "operand(", "runtime(" are fine.
NONDET_BANNED_CALLS = ["rand", "time"]

# ---------------------------------------------------------------------------
# rpc: the wire contract, one row per rpc::Method enumerator.
#
# method -> (request struct, response struct, dispatch owners). None means an
# empty payload on that side. This table is the single source of truth for
# BOTH the analyzer and tools/gen_rpc_roundtrip.py (which imports it to emit
# the round-trip test), so a Method that lacks wire coverage fails the lint
# and the build in the same breath.
#
# kPing is the liveness broadcast every server family answers, so it is the
# one method with several owners by design — encoded here, not waived.
RPC_MESSAGES_HPP = "src/fs/rpc/messages.hpp"
RPC_MESSAGES_CPP = "src/fs/rpc/messages.cpp"
RPC_ROUNDTRIP_TEST = "tests/test_rpc_roundtrip.cpp"
RPC_ROUNDTRIP_MARKER = "rpc_roundtrip.gen.inc"
RPC_SERVER_FILES = {
    "nameserver": "src/fs/nameserver.cpp",
    "dataserver": "src/fs/dataserver.cpp",
    "flowserver_service": "src/fs/flowserver_service.cpp",
    "meta": "src/fs/meta/plane.cpp",
}
RPC_METHODS = {
    "kCreateFile": ("CreateFileReq", "FileInfoResp", ("nameserver",)),
    "kDeleteFile": ("NameReq", None, ("nameserver",)),
    "kLookupFile": ("NameReq", "FileInfoResp", ("nameserver",)),
    "kListFiles": (None, "ListFilesResp", ("nameserver",)),
    "kAppend": ("AppendReq", "AppendResp", ("dataserver",)),
    "kAppendRelay": ("AppendRelayReq", None, ("dataserver",)),
    "kReadFile": ("ReadReq", "ReadResp", ("dataserver",)),
    "kScanFiles": (None, "ScanFilesResp", ("dataserver",)),
    "kCreateReplica": ("CreateReplicaReq", None, ("dataserver",)),
    "kDropReplica": ("DropReplicaReq", None, ("dataserver",)),
    "kReportSize": ("ReportSizeReq", None, ("nameserver",)),
    "kSelectReplicas": ("SelectReplicasReq", "SelectReplicasResp",
                        ("flowserver_service",)),
    "kFlowDropped": ("FlowDroppedReq", None, ("flowserver_service",)),
    "kPing": (None, None, ("nameserver", "dataserver", "meta")),
    "kReplicateTo": ("ReplicateToReq", None, ("dataserver",)),
    "kInstallReplica": ("InstallReplicaReq", None, ("dataserver",)),
    "kUpdateReplicas": ("UpdateReplicasReq", None, ("dataserver",)),
    "kSelectReplicasBatch": ("SelectReplicasBatchReq",
                             "SelectReplicasBatchResp",
                             ("flowserver_service",)),
    "kGetShardMap": (None, "ShardMapResp", ("meta",)),
    "kPlanWrite": ("PlanWriteReq", "SelectReplicasResp",
                   ("flowserver_service",)),
    "kPlanWriteBatch": ("PlanWriteBatchReq", "SelectReplicasBatchResp",
                        ("flowserver_service",)),
}

# ---------------------------------------------------------------------------
# metrics: where the registry of exported metric names lives, and where the
# human-readable inventory lives. src/obs/metrics.* defines the registry API
# itself and is excluded from registration extraction.
METRICS_REGISTRY_PY = "tools/check_metrics.py"
METRICS_DESIGN_MD = "DESIGN.md"
METRICS_DESIGN_BEGIN = "<!-- metrics-inventory:begin -->"
METRICS_DESIGN_END = "<!-- metrics-inventory:end -->"

# ---------------------------------------------------------------------------
# flagdoc: the CLI whose flags must match the README flag table.
FLAGDOC_CLI = "tools/mayflower_sim.cpp"
FLAGDOC_README = "README.md"
FLAGDOC_BEGIN = "<!-- flag-table:begin -->"
FLAGDOC_END = "<!-- flag-table:end -->"

# ---------------------------------------------------------------------------
# units: canonical suffixes are _bps, _bytes, _sec, _us. Everything below is
# a non-canonical spelling of one of those. The suffix test runs on
# identifiers with trailing underscores stripped, so member names (foo_ms_)
# cannot evade it.
UNIT_BANNED_SUFFIXES = (
    "_seconds", "_second", "_secs", "_millis", "_msec", "_ms",
    "_usec", "_usecs", "_micros", "_nanos", "_bw",
)
# Converter/formatter names where the suffix documents the PARAMETER's unit
# (SimTime::from_millis takes milliseconds and returns a SimTime), not a
# quantity the identifier carries. These are the whole sanctioned list.
UNIT_ALLOWED_IDENTIFIERS = {
    "from_seconds", "from_millis", "from_micros", "from_nanos",
    "human_seconds",
}
UNIT_DIRS = ("src", "tools", "tests", "bench")

CHECKS = ("boundary", "nondet", "guards", "rpc", "metrics", "flagdoc",
          "units", "lockorder")


def strip_comments_and_strings(text):
    """Returns (code_lines, raw_lines): raw lines as-is, and the same lines
    with comments and string/char literal contents blanked out. Line count
    and column positions are preserved."""
    raw_lines = text.split("\n")
    out = []
    i = 0
    n = len(text)
    buf = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                buf.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append("'")
                i += 1
                continue
            buf.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                buf.append("\n")
            else:
                buf.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                buf.append("  ")
                i += 2
                continue
            buf.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                buf.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                buf.append(quote)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                buf.append("\n")
            else:
                buf.append(" ")
        i += 1
    return "".join(buf).split("\n"), raw_lines


def waived(raw_lines, lineno, check):
    """lint:allow(<check>) on this line or the previous one."""
    token = "lint:allow(%s)" % check
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines) and token in raw_lines[ln - 1]:
            return True
    return False


def iter_source_files(root, subdir="src"):
    for dirpath, _, filenames in sorted(os.walk(os.path.join(root, subdir))):
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                yield os.path.join(dirpath, name)


def check_boundary(root, findings, files=None):
    if files is not None:
        paths = [(p, True) for p in files]
    else:
        paths = [(os.path.join(root, f), i < DECISION_FILE_COUNT)
                 for i, f in enumerate(BOUNDARY_FILES)]
    pattern = re.compile(
        r"\b(%s)\b" % "|".join(re.escape(b) for b in BOUNDARY_BANNED))
    shard_pattern = re.compile(
        r"\b(%s)\b" % "|".join(re.escape(b) for b in SHARD_INTERNAL_BANNED))
    for path, decision_file in paths:
        if not os.path.exists(path):
            findings.append((path, 0, "boundary",
                             "expected decision-boundary file is missing"))
            continue
        with open(path, encoding="utf-8") as f:
            code, raw = strip_comments_and_strings(f.read())
        for idx, line in enumerate(code, start=1):
            if waived(raw, idx, "boundary"):
                continue
            m = pattern.search(line)
            if m:
                findings.append((path, idx, "boundary",
                                 "decision code names raw fabric/sim state "
                                 "'%s'" % m.group(1)))
                continue
            if decision_file:
                m = shard_pattern.search(line)
                if m:
                    findings.append((path, idx, "boundary",
                                     "decision code reaches into shard "
                                     "bookkeeping '%s'" % m.group(1)))


def unordered_members(code_lines):
    """Names declared as std::unordered_map/set members (trailing '_')."""
    decl = re.compile(
        r"std::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+_)\s*[;{=]")
    names = set()
    for line in code_lines:
        for m in decl.finditer(line):
            names.add(m.group(1))
    return names


def check_nondet(root, findings, files=None):
    paths = list(files) if files is not None else list(iter_source_files(root))
    banned = re.compile(
        r"\b(%s)\b" % "|".join(re.escape(b) for b in NONDET_BANNED))
    banned_call = re.compile(
        r"(?<![\w:.>])(%s)\s*\(" % "|".join(NONDET_BANNED_CALLS))
    ptr_key = re.compile(r"std::(?:map|set)\s*<[^,>]*\*")
    for path in paths:
        with open(path, encoding="utf-8") as f:
            code, raw = strip_comments_and_strings(f.read())
        unordered = unordered_members(code)
        range_for = None
        if unordered:
            range_for = re.compile(
                r"for\s*\(.*:\s*(?:\w+[.->]+)?(%s)\s*\)" %
                "|".join(re.escape(u) for u in unordered))
        for idx, line in enumerate(code, start=1):
            if waived(raw, idx, "nondet"):
                continue
            m = banned.search(line)
            if m:
                findings.append((path, idx, "nondet",
                                 "nondeterministic source '%s'" % m.group(1)))
                continue
            m = banned_call.search(line)
            if m:
                findings.append((path, idx, "nondet",
                                 "call to '%s()' (wall clock / ambient "
                                 "randomness)" % m.group(1)))
                continue
            if ptr_key.search(line):
                findings.append((path, idx, "nondet",
                                 "pointer-keyed ordered container (iteration "
                                 "order follows the allocator)"))
                continue
            if range_for is not None:
                m = range_for.search(line)
                if m:
                    findings.append((path, idx, "nondet",
                                     "range-for over unordered member '%s' "
                                     "(hash order is not deterministic)" %
                                     m.group(1)))


def check_guards(root, findings, files=None):
    paths = list(files) if files is not None else list(iter_source_files(root))
    mutex_decl = re.compile(r"common::Mutex\s+(\w+)\s*;")
    std_mutex = re.compile(r"\bstd::(?:mutex|recursive_mutex|shared_mutex)\b")
    for path in paths:
        with open(path, encoding="utf-8") as f:
            code, raw = strip_comments_and_strings(f.read())
        text = "\n".join(code)
        for idx, line in enumerate(code, start=1):
            if path.replace("\\", "/").endswith("src/common/sync.hpp"):
                break  # the wrapper itself legitimately holds a std::mutex
            if std_mutex.search(line) and not waived(raw, idx, "guards"):
                findings.append((path, idx, "guards",
                                 "raw std::mutex is invisible to thread "
                                 "safety analysis; use common::Mutex"))
        for idx, line in enumerate(code, start=1):
            m = mutex_decl.search(line)
            if m is None or waived(raw, idx, "guards"):
                continue
            name = m.group(1)
            if "GUARDED_BY(%s)" % name not in text and \
               "PT_GUARDED_BY(%s)" % name not in text:
                findings.append((path, idx, "guards",
                                 "mutex '%s' guards no member: annotate the "
                                 "state it protects with GUARDED_BY(%s)" %
                                 (name, name)))


# ---------------------------------------------------------------------------
# rpc-exhaustive


def read_stripped(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    code, raw = strip_comments_and_strings(text)
    return code, raw


def parse_method_enum(code_text):
    m = re.search(r"enum\s+class\s+Method[^{]*\{([^}]*)\}", code_text)
    if m is None:
        return None
    return re.findall(r"\b(k\w+)\b", m.group(1))


def check_rpc(root, findings, cfg=None):
    if cfg is None:
        cfg = {
            "methods": RPC_METHODS,
            "messages_hpp": os.path.join(root, RPC_MESSAGES_HPP),
            "messages_cpp": os.path.join(root, RPC_MESSAGES_CPP),
            "servers": {o: os.path.join(root, p)
                        for o, p in RPC_SERVER_FILES.items()},
            "roundtrip": os.path.join(root, RPC_ROUNDTRIP_TEST),
        }
    methods = cfg["methods"]
    hpp = cfg["messages_hpp"]
    cpp = cfg["messages_cpp"]

    if not os.path.exists(hpp) or not os.path.exists(cpp):
        findings.append((hpp, 0, "rpc", "rpc message files missing"))
        return
    hpp_code, _ = read_stripped(hpp)
    cpp_code, _ = read_stripped(cpp)
    hpp_text = "\n".join(hpp_code)
    cpp_text = "\n".join(cpp_code)

    enum = parse_method_enum(hpp_text)
    if enum is None:
        findings.append((hpp, 0, "rpc", "no 'enum class Method' found"))
        return
    for name in enum:
        if name not in methods:
            findings.append((hpp, 0, "rpc",
                             "Method::%s has no row in RPC_METHODS: add its "
                             "request/response structs and dispatch owner" %
                             name))
    for name in methods:
        if name not in enum:
            findings.append((hpp, 0, "rpc",
                             "RPC_METHODS row '%s' names no Method "
                             "enumerator (stale table entry)" % name))

    # Every message struct the table references must be declared in
    # messages.hpp and define encode + decode in messages.cpp.
    structs = set()
    for name in methods:
        if name not in enum:
            continue
        req, resp, _ = methods[name]
        for s in (req, resp):
            if s is not None:
                structs.add(s)
    for s in sorted(structs):
        if not re.search(r"\bstruct\s+%s\b" % re.escape(s), hpp_text):
            findings.append((hpp, 0, "rpc",
                             "message struct '%s' not declared in "
                             "messages.hpp" % s))
            continue
        if not re.search(r"\b%s::encode\b" % re.escape(s), cpp_text):
            findings.append((cpp, 0, "rpc",
                             "'%s::encode' not defined in messages.cpp" % s))
        if not re.search(r"\b%s::decode\b" % re.escape(s), cpp_text):
            findings.append((cpp, 0, "rpc",
                             "'%s::decode' not defined in messages.cpp" % s))

    # Dispatch arms: `case Method::kX` or `method == Method::kX` in a server
    # file counts as dispatching kX there. Client stubs (transport->call with
    # a Method argument) intentionally do not match.
    dispatch_re = re.compile(
        r"(?:case\s+Method::|method\s*==\s*Method::)(k\w+)")
    dispatched = {}  # owner -> set of methods
    for owner, path in cfg["servers"].items():
        if not os.path.exists(path):
            findings.append((path, 0, "rpc",
                             "server file for '%s' is missing" % owner))
            dispatched[owner] = set()
            continue
        code, _ = read_stripped(path)
        dispatched[owner] = set(dispatch_re.findall("\n".join(code)))
    for name in sorted(methods):
        if name not in enum:
            continue
        owners = methods[name][2]
        for owner in owners:
            if owner in dispatched and name not in dispatched[owner]:
                findings.append((cfg["servers"][owner], 0, "rpc",
                                 "Method::%s owned by '%s' but never "
                                 "dispatched there" % (name, owner)))
        for owner, seen in dispatched.items():
            if name in seen and owner not in owners:
                findings.append((cfg["servers"][owner], 0, "rpc",
                                 "Method::%s dispatched in '%s' which does "
                                 "not own it (owners: %s)" %
                                 (name, owner, ", ".join(owners))))

    # Round-trip coverage: the generated test must exist and include the
    # .inc the generator derives from this same table. Unmapped enumerators
    # were already flagged above — the generator would refuse them too.
    rt = cfg.get("roundtrip")
    if rt is not None:
        if not os.path.exists(rt):
            findings.append((rt, 0, "rpc",
                             "generated round-trip test driver missing"))
        else:
            with open(rt, encoding="utf-8") as f:
                if RPC_ROUNDTRIP_MARKER not in f.read():
                    findings.append((rt, 0, "rpc",
                                     "round-trip driver does not include "
                                     "the generated '%s'" %
                                     RPC_ROUNDTRIP_MARKER))


# ---------------------------------------------------------------------------
# metrics-contract

METRIC_CALL_RE = re.compile(r"[.>](counter|gauge|histogram)\s*\(")
METRIC_NAME_SHAPE = re.compile(r"^[a-z<][a-z0-9_.<>-]*$")
METRIC_WILDCARDS = {
    "<i>": r"\d+",
    "<method>": r"[A-Za-z]+",
    "<kind>": r"[a-z-]+",
}


def metric_scopes(registry):
    return tuple(registry.get("__scopes__", ()))


def expand_scope(pattern, scopes):
    """'<scope>.ops' -> one concrete-ish pattern per scope value."""
    if "<scope>" not in pattern:
        return [pattern]
    return [pattern.replace("<scope>", s) for s in scopes]


def pattern_regex(pattern, scopes):
    out = []
    for expanded in expand_scope(pattern, scopes):
        rx = re.escape(expanded)
        for token, sub in METRIC_WILDCARDS.items():
            rx = rx.replace(re.escape(token), sub)
        out.append(rx)
    return re.compile(r"^(?:%s)$" % "|".join(out))


def extract_metric_registrations(paths):
    """Finds registry.counter/gauge/histogram registration sites.

    Returns (exact, dynamic): exact is [(path, line, kind, name)] for sites
    whose argument is a single string literal; dynamic is
    [(path, line, kind, [literal fragments])] for concatenated names.
    """
    exact, dynamic = [], []
    for path in paths:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        code_lines, raw_lines = strip_comments_and_strings(text)
        code = "\n".join(code_lines)
        raw = "\n".join(raw_lines)
        for m in METRIC_CALL_RE.finditer(code):
            kind = m.group(1)
            # Walk the first argument: to the matching ',' or ')' at depth 0.
            i = m.end()
            depth = 0
            start = i
            while i < len(code):
                c = code[i]
                if c in "([{":
                    depth += 1
                elif c in ")]}":
                    if depth == 0:
                        break
                    depth -= 1
                elif c == "," and depth == 0:
                    break
                i += 1
            arg_code = code[start:i]
            lineno = code.count("\n", 0, m.start()) + 1
            # String literal spans keep their quotes in the stripped text;
            # read the blanked contents back from the raw text (the stripper
            # preserves offsets).
            fragments = []
            for lit in re.finditer(r'"([^"]*)"', arg_code):
                fragments.append(raw[start + lit.start() + 1:
                                     start + lit.end() - 1])
            stripped = arg_code.strip()
            if re.fullmatch(r'"[^"]*"', stripped) and len(fragments) == 1:
                exact.append((path, lineno, kind, fragments[0]))
            elif fragments:
                dynamic.append((path, lineno, kind, fragments))
            else:
                # No literal at all (e.g. a pass-through helper): nothing to
                # check here; the helper's own call sites carry the names.
                pass
    return exact, dynamic


def load_metric_registry(path, findings):
    """Reads REGISTERED_METRICS (pattern -> kind) and METRIC_SCOPES out of a
    check_metrics-style module without importing it."""
    with open(path, encoding="utf-8") as f:
        tree = ast.parse(f.read(), filename=path)
    registry = {}
    scopes = ()
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == "REGISTERED_METRICS":
            try:
                registry = ast.literal_eval(node.value)
            except ValueError:
                findings.append((path, node.lineno, "metrics",
                                 "REGISTERED_METRICS is not a literal dict"))
        elif target.id == "METRIC_SCOPES":
            try:
                scopes = tuple(ast.literal_eval(node.value))
            except ValueError:
                findings.append((path, node.lineno, "metrics",
                                 "METRIC_SCOPES is not a literal tuple"))
    if not registry:
        findings.append((path, 0, "metrics",
                         "no REGISTERED_METRICS dict found"))
    registry = dict(registry)
    registry["__scopes__"] = scopes
    return registry


def metric_strings_in_module(path):
    """Every metric-shaped string constant in the module (f-string parts
    included), with line numbers — the names check_metrics.py validates."""
    with open(path, encoding="utf-8") as f:
        tree = ast.parse(f.read(), filename=path)
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            s = node.value
            if "." in s and METRIC_NAME_SHAPE.fullmatch(s):
                out.append((node.lineno, s))
    return out


def check_metrics_contract(root, findings, cfg=None):
    if cfg is None:
        src_files = [p for p in iter_source_files(root, "src")
                     if not p.replace("\\", "/").endswith(
                         ("src/obs/metrics.hpp", "src/obs/metrics.cpp"))]
        cfg = {
            "src_files": src_files,
            "registry": os.path.join(root, METRICS_REGISTRY_PY),
            "design": os.path.join(root, METRICS_DESIGN_MD),
        }
    reg_path = cfg["registry"]
    if not os.path.exists(reg_path):
        findings.append((reg_path, 0, "metrics", "registry module missing"))
        return
    registry = load_metric_registry(reg_path, findings)
    scopes = metric_scopes(registry)
    patterns = {p: k for p, k in registry.items() if p != "__scopes__"}
    compiled = {p: pattern_regex(p, scopes) for p in patterns}
    expanded = {p: expand_scope(p, scopes) for p in patterns}

    exact, dynamic = extract_metric_registrations(cfg["src_files"])

    # 1. Every registration must be known to the registry, with the right
    #    kind, and carry a canonical unit suffix.
    covered = set()
    for path, lineno, kind, name in exact:
        hits = [p for p, rx in compiled.items() if rx.fullmatch(name)]
        if not hits:
            findings.append((path, lineno, "metrics",
                             "metric '%s' registered here but unknown to "
                             "REGISTERED_METRICS in check_metrics.py" % name))
        for p in hits:
            covered.add(p)
            if patterns[p] != kind:
                findings.append((path, lineno, "metrics",
                                 "metric '%s' registered as %s but "
                                 "REGISTERED_METRICS says %s" %
                                 (name, kind, patterns[p])))
        leaf = name.rsplit(".", 1)[-1]
        for suffix in UNIT_BANNED_SUFFIXES:
            if leaf.endswith(suffix):
                findings.append((path, lineno, "metrics",
                                 "metric '%s' uses non-canonical unit "
                                 "suffix '%s' (use _bps/_bytes/_sec/_us)" %
                                 (name, suffix)))
    for path, lineno, kind, fragments in dynamic:
        hits = [p for p in patterns
                if any(all(frag in e for frag in fragments)
                       for e in expanded[p])]
        if not hits:
            findings.append((path, lineno, "metrics",
                             "dynamic metric registration (fragments %s) "
                             "matches no REGISTERED_METRICS pattern" %
                             fragments))
        for p in hits:
            covered.add(p)
            if patterns[p] != kind:
                findings.append((path, lineno, "metrics",
                                 "dynamic %s registration matches pattern "
                                 "'%s' declared as %s" %
                                 (kind, p, patterns[p])))

    # 2. No dead families: every registry pattern must be registered by some
    #    code the analyzer saw.
    for p in sorted(patterns):
        if p not in covered:
            findings.append((reg_path, 0, "metrics",
                             "REGISTERED_METRICS pattern '%s' is registered "
                             "by nothing in src/ (dead family)" % p))

    # 3. Every metric-name string check_metrics validates must belong to a
    #    registered pattern (full match, or a fragment of one — prefix
    #    checks like "meta." appear in the code as partial strings).
    all_expanded = [e for exp in expanded.values() for e in exp]
    for lineno, s in metric_strings_in_module(reg_path):
        if s in patterns:
            continue
        if any(rx.fullmatch(s) for rx in compiled.values()):
            continue
        if any(s in e for e in all_expanded):
            continue
        findings.append((reg_path, lineno, "metrics",
                         "check_metrics.py validates '%s' which no "
                         "REGISTERED_METRICS pattern registers" % s))

    # 4. The DESIGN.md inventory lists exactly the registered patterns.
    design = cfg["design"]
    if not os.path.exists(design):
        findings.append((design, 0, "metrics", "design document missing"))
        return
    with open(design, encoding="utf-8") as f:
        text = f.read()
    begin = text.find(METRICS_DESIGN_BEGIN)
    end = text.find(METRICS_DESIGN_END)
    if begin < 0 or end < 0 or end < begin:
        findings.append((design, 0, "metrics",
                         "no metrics inventory section (%s ... %s)" %
                         (METRICS_DESIGN_BEGIN, METRICS_DESIGN_END)))
        return
    section = text[begin:end]
    listed = set()
    for m in re.finditer(r"`([^`]+)`", section):
        if METRIC_NAME_SHAPE.fullmatch(m.group(1)) and "." in m.group(1):
            listed.add(m.group(1))
    for p in sorted(patterns):
        if p not in listed:
            findings.append((design, 0, "metrics",
                             "metric pattern '%s' missing from the DESIGN.md "
                             "metrics inventory" % p))
    for name in sorted(listed):
        if name not in patterns:
            findings.append((design, 0, "metrics",
                             "DESIGN.md metrics inventory lists '%s' which "
                             "is not a registered pattern" % name))


# ---------------------------------------------------------------------------
# flag-doc


def parse_cli_flags(path, findings):
    """The string literals inside the Flags::validate({...}) whitelist."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    m = re.search(r"validate\s*\(\s*\{", text)
    if m is None:
        findings.append((path, 0, "flagdoc",
                         "no flags.validate({...}) whitelist found"))
        return set()
    i = m.end()
    depth = 1
    start = i
    while i < len(text) and depth > 0:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    return set(re.findall(r'"([a-z][a-z0-9-]*)"', text[start:i - 1]))


def check_flag_doc(root, findings, cfg=None):
    if cfg is None:
        cfg = {
            "cli": os.path.join(root, FLAGDOC_CLI),
            "readme": os.path.join(root, FLAGDOC_README),
        }
    cli = cfg["cli"]
    readme = cfg["readme"]
    if not os.path.exists(cli):
        findings.append((cli, 0, "flagdoc", "CLI source missing"))
        return
    parsed = parse_cli_flags(cli, findings)
    if not os.path.exists(readme):
        findings.append((readme, 0, "flagdoc", "README missing"))
        return
    with open(readme, encoding="utf-8") as f:
        text = f.read()
    begin = text.find(FLAGDOC_BEGIN)
    end = text.find(FLAGDOC_END)
    if begin < 0 or end < 0 or end < begin:
        findings.append((readme, 0, "flagdoc",
                         "no flag table section (%s ... %s)" %
                         (FLAGDOC_BEGIN, FLAGDOC_END)))
        return
    section = text[begin:end]
    documented = set(re.findall(r"--([a-z][a-z0-9-]*)", section))
    for flag in sorted(parsed):
        if flag not in documented:
            findings.append((readme, 0, "flagdoc",
                             "--%s is parsed by mayflower_sim but missing "
                             "from the README flag table" % flag))
    for flag in sorted(documented):
        if flag not in parsed:
            findings.append((readme, 0, "flagdoc",
                             "--%s is in the README flag table but "
                             "mayflower_sim does not parse it" % flag))


# ---------------------------------------------------------------------------
# unit-suffix

UNIT_IDENT_RE = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")


def unit_source_files(root):
    out = []
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    for subdir in UNIT_DIRS:
        for path in iter_source_files(root, subdir):
            if not path.startswith(fixture_dir):
                out.append(path)
    return out


def check_units(root, findings, files=None):
    paths = list(files) if files is not None else unit_source_files(root)
    for path in paths:
        code, raw = read_stripped(path)
        for idx, line in enumerate(code, start=1):
            if waived(raw, idx, "units"):
                continue
            seen = set()
            for m in UNIT_IDENT_RE.finditer(line):
                ident = m.group(0)
                if ident in seen:
                    continue
                seen.add(ident)
                if ident in UNIT_ALLOWED_IDENTIFIERS:
                    continue
                base = ident.rstrip("_")
                for suffix in UNIT_BANNED_SUFFIXES:
                    if base.endswith(suffix):
                        findings.append(
                            (path, idx, "units",
                             "identifier '%s' uses non-canonical unit "
                             "suffix '%s' (canonical: _bps, _bytes, _sec, "
                             "_us)" % (ident, suffix)))
                        break
    return findings


# ---------------------------------------------------------------------------
# lock-order

LOCK_DECL_RE = re.compile(
    r"\b(?:common::)?MutexLock\s+\w+\s*\(\s*(&?\s*[A-Za-z_][\w]*"
    r"(?:(?:\.|->)[A-Za-z_][\w]*)*)\s*[),]")
ACQ_BEFORE_RE = re.compile(r"\b(\w+)\s+ACQUIRED_BEFORE\(([^)]*)\)")
ACQ_AFTER_RE = re.compile(r"\b(\w+)\s+ACQUIRED_AFTER\(([^)]*)\)")


def normalize_lock_expr(expr):
    expr = re.sub(r"\s+", "", expr).lstrip("&")
    if expr.startswith("this->"):
        expr = expr[len("this->"):]
    return expr


def collect_lock_edges(paths):
    """Edges (held -> acquired) from TSA annotations and observed MutexLock
    nesting. Self-edges are dropped: the static key cannot distinguish two
    instances of the same member, so same-name nesting (per-shard locks
    taken in sequence under a parent lock) is not evidence of a cycle."""
    edges = {}  # (a, b) -> (path, line)

    def add(a, b, path, line):
        if a != b and (a, b) not in edges:
            edges[(a, b)] = (path, line)

    for path in paths:
        code_lines, raw = read_stripped(path)
        # Preprocessor lines define the annotation macros themselves (and
        # never acquire a lock): blank them, keeping offsets intact.
        code_lines = [" " * len(l) if l.lstrip().startswith("#") else l
                      for l in code_lines]
        code = "\n".join(code_lines)
        for m in ACQ_BEFORE_RE.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            if waived(raw, line, "lockorder"):
                continue
            holder = normalize_lock_expr(m.group(1))
            for other in m.group(2).split(","):
                if other.strip():
                    add(holder, normalize_lock_expr(other), path, line)
        for m in ACQ_AFTER_RE.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            if waived(raw, line, "lockorder"):
                continue
            holder = normalize_lock_expr(m.group(1))
            for other in m.group(2).split(","):
                if other.strip():
                    add(normalize_lock_expr(other), holder, path, line)

        # Observed nesting: a MutexLock constructed while another is live in
        # an enclosing (or the same) scope orders the two mutexes.
        locks = []  # stack of (decl_depth, key)
        depth = 0
        events = []  # (pos, kind, payload)
        for m in re.finditer(r"[{}]", code):
            events.append((m.start(), m.group(0), None))
        for m in LOCK_DECL_RE.finditer(code):
            events.append((m.start(), "lock", normalize_lock_expr(m.group(1))))
        events.sort(key=lambda e: e[0])
        for pos, kind, payload in events:
            if kind == "{":
                depth += 1
            elif kind == "}":
                depth -= 1
                while locks and locks[-1][0] > depth:
                    locks.pop()
            else:
                line = code.count("\n", 0, pos) + 1
                if waived(raw, line, "lockorder"):
                    continue
                for _, held in locks:
                    add(held, payload, path, line)
                locks.append((depth, payload))
    return edges


def check_lockorder(root, findings, files=None):
    paths = list(files) if files is not None else \
        list(iter_source_files(root, "src"))
    edges = collect_lock_edges(paths)
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)

    # DFS cycle detection; report each cycle once, anchored at the edge that
    # closes it.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []
    reported = set()

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if color.get(nxt, WHITE) == GRAY:
                cycle = stack[stack.index(nxt):] + [nxt]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    path, line = edges[(node, nxt)]
                    findings.append(
                        (path, line, "lockorder",
                         "lock-order cycle: %s (latent deadlock; fix the "
                         "acquisition order or split the lock)" %
                         " -> ".join(cycle)))
            elif color.get(nxt, WHITE) == WHITE:
                visit(nxt)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            visit(node)
    return findings


# ---------------------------------------------------------------------------


def count_waivers(root):
    """lint:allow( occurrences across the scanned tree, fixtures excluded."""
    total = 0
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    for subdir in UNIT_DIRS:
        for path in iter_source_files(root, subdir):
            if path.startswith(fixture_dir):
                continue
            with open(path, encoding="utf-8") as f:
                total += f.read().count("lint:allow(")
    return total


def run_checks(root, which, files=None):
    findings = []
    if which in ("boundary", "all"):
        check_boundary(root, findings, files)
    if which in ("nondet", "all"):
        check_nondet(root, findings, files)
    if which in ("guards", "all"):
        check_guards(root, findings, files)
    if which in ("units", "all"):
        check_units(root, findings, files)
    if which in ("lockorder", "all"):
        check_lockorder(root, findings, files)
    # The cross-file contract checks take no per-file override: they always
    # analyze the whole tree (fixture self-tests drive them through cfg).
    if files is None:
        if which in ("rpc", "all"):
            check_rpc(root, findings)
        if which in ("metrics", "all"):
            check_metrics_contract(root, findings)
        if which in ("flagdoc", "all"):
            check_flag_doc(root, findings)
    return findings


def fixture_rpc_cfg(dirpath):
    return {
        "methods": {
            "kEcho": ("EchoReq", "EchoResp", ("server",)),
            "kPing": (None, None, ("server",)),
        },
        "messages_hpp": os.path.join(dirpath, "messages.hpp"),
        "messages_cpp": os.path.join(dirpath, "messages.cpp"),
        "servers": {"server": os.path.join(dirpath, "server.cpp")},
        "roundtrip": None,
    }


def fixture_metrics_cfg(dirpath):
    return {
        "src_files": [os.path.join(dirpath, "registrations.cpp")],
        "registry": os.path.join(dirpath, "registry.py"),
        "design": os.path.join(dirpath, "design.md"),
    }


def fixture_flagdoc_cfg(dirpath):
    return {
        "cli": os.path.join(dirpath, "sim.cpp"),
        "readme": os.path.join(dirpath, "readme.md"),
    }


def self_test(root):
    """The fixtures encode the analyzer's own contract: every bad fixture
    must produce exactly its expected findings, every good one zero."""
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    failures = []

    good = os.path.join(fixture_dir, "good.cpp")
    got = run_checks(root, "all", files=[good])
    got += run_checks(root, "boundary", files=[good])
    for f in got:
        failures.append("good.cpp flagged: %s:%d [%s] %s" % f)

    expectations = {
        "bad_boundary.cpp": ("boundary", 5),
        "bad_nondet.cpp": ("nondet", 4),
        "bad_guards.cpp": ("guards", 2),
        "bad_units.cpp": ("units", 3),
        "bad_lockorder.cpp": ("lockorder", 1),
    }
    for name, (check, want) in sorted(expectations.items()):
        path = os.path.join(fixture_dir, name)
        got = run_checks(root, check, files=[path])
        if len(got) != want:
            failures.append(
                "%s: expected %d %s findings, got %d: %r" %
                (name, want, check, len(got), got))

    # Cross-file contract checks run against miniature fixture trees via
    # their cfg overrides: one violating tree, one clean tree per pass.
    structural = {
        "rpc": (check_rpc, fixture_rpc_cfg, "rpc_bad", 4, "rpc_good"),
        "metrics": (check_metrics_contract, fixture_metrics_cfg,
                    "metrics_bad", 4, "metrics_good"),
        "flagdoc": (check_flag_doc, fixture_flagdoc_cfg,
                    "flagdoc_bad", 2, "flagdoc_good"),
    }
    for check, (fn, mkcfg, bad, want, goodtree) in sorted(structural.items()):
        got = []
        fn(root, got, cfg=mkcfg(os.path.join(fixture_dir, bad)))
        if len(got) != want:
            failures.append("%s: expected %d %s findings, got %d: %r" %
                            (bad, want, check, len(got), got))
        got = []
        fn(root, got, cfg=mkcfg(os.path.join(fixture_dir, goodtree)))
        if got:
            failures.append("%s flagged: %r" % (goodtree, got))

    if failures:
        for f in failures:
            print("SELF-TEST FAIL: %s" % f, file=sys.stderr)
        return 1
    print("self-test OK (%d fixtures)" %
          (len(expectations) + 2 * len(structural) + 1))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--check", default="all",
                    choices=list(CHECKS) + ["all"])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--max-waivers", type=int, default=None,
                    help="fail when the tree carries more than N "
                         "lint:allow(...) waivers (fixtures excluded)")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.root)

    findings = run_checks(args.root, args.check)
    for path, lineno, check, msg in findings:
        rel = os.path.relpath(path, args.root)
        print("%s:%d: [%s] %s" % (rel, lineno, check, msg), file=sys.stderr)
    if findings:
        print("%d invariant violation(s)" % len(findings), file=sys.stderr)
        return 1
    if args.max_waivers is not None:
        waivers = count_waivers(args.root)
        if waivers > args.max_waivers:
            print("waiver budget exceeded: %d lint:allow(...) waivers in "
                  "the tree, budget is %d" % (waivers, args.max_waivers),
                  file=sys.stderr)
            return 1
        print("lint_invariants: %s clean (%d/%d waivers)" %
              (args.check, waivers, args.max_waivers))
        return 0
    print("lint_invariants: %s clean" % args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
