// Fixture: two methods acquire the same pair of mutexes in opposite
// orders — the classic latent deadlock. The lock-order pass must report
// exactly one cycle (mu_a_ -> mu_b_ -> mu_a_, deduplicated across the two
// closing edges).
namespace fixture {

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};

class TwoLocks {
 public:
  void forward() {
    MutexLock outer(mu_a_);
    MutexLock inner(mu_b_);
  }
  void backward() {
    MutexLock outer(mu_b_);
    MutexLock inner(mu_a_);
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
};

}  // namespace fixture
