// Fixture: identifiers carrying non-canonical unit suffixes. The units
// pass must flag exactly three lines (one per banned suffix used below);
// the canonical spellings alongside them must stay clean.
namespace fixture {

struct TimerConfig {
  double poll_interval_seconds = 1.0;  // flagged: _seconds (use _sec)
  long request_timeout_ms = 5;         // flagged: _ms (use _sec or _us)
  double poll_interval_sec = 1.0;      // canonical: clean
  double service_time_us = 50.0;       // canonical: clean
};

// flagged: _bw (use _bps)
inline double bottleneck_bw(double capacity_bps) { return capacity_bps; }

}  // namespace fixture
