// Negative-space fixture: everything in here must pass every check.
// Mentioning flow_sim or port_bytes in a comment is fine — the scanner
// strips comments before matching, which is exactly what the old grep gate
// could not do. Neither is the string below a violation.
#include <map>
#include <unordered_map>

namespace fixture {

struct Mutex {};
#define GUARDED_BY(x)

// A guarded mutex member: common::Mutex plus at least one GUARDED_BY.
struct Guarded {
  mutable ::fixture::Mutex mu_;  // not common::Mutex — no guard obligation
  int value_ GUARDED_BY(mu_) = 0;
};

inline const char* banner() { return "poll_port_stats is only a string"; }

struct Table {
  std::unordered_map<int, int> cells_;
  std::map<int, int> ordered_;

  int sum() const {
    int total = 0;
    // Hash order is irrelevant here: addition commutes. lint:allow(nondet)
    for (const auto& kv : cells_) total += kv.second;
    for (const auto& kv : ordered_) total += kv.second;  // ordered: fine
    return total;
  }
};

}  // namespace fixture
