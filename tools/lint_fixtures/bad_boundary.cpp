// Fixture: decision code reaching past the NetworkView. Exactly two
// violations — the comment and string mentions of flow_sim must NOT count.
namespace fixture {

struct Fabric {
  int flow_sim() { return 0; }      // violation 1: names raw sim state
  double port_bytes_now = 0.0;
};

inline double peek(Fabric& f) {
  // flow_sim in prose is fine; the call below is not.
  const char* note = "flow_sim";     // string mention: fine
  (void)note;
  return static_cast<double>(f.flow_sim()) + f.port_bytes_now;  // violation 2
}

}  // namespace fixture
