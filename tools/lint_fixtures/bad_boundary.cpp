// Fixture: decision code reaching past the NetworkView. Exactly five
// violations — the comment and string mentions of flow_sim must NOT count.
namespace fixture {

struct Fabric {
  int flow_sim() { return 0; }      // violation 1: names raw sim state
  double port_bytes_now = 0.0;
};

inline double peek(Fabric& f) {
  // flow_sim in prose is fine; the call below is not.
  const char* note = "flow_sim";     // string mention: fine
  (void)note;
  return static_cast<double>(f.flow_sim()) + f.port_bytes_now;  // violation 2
}

inline int peek_table(Fabric& f) {
  (void)f;
  return f.switch_at(3);             // violation 3: raw switch table access
}

inline int peek_shard(Fabric& f) {
  (void)f;
  // shard_version in prose is fine; the call below is not.
  return f.shard_version(2);         // violation 4: shard bookkeeping
}

inline int peek_meta(Fabric& f) {
  (void)f;
  // owner_of_path in prose is fine; the call below is not.
  return f.owner_of_path(7);         // violation 5: metadata shard routing
}

}  // namespace fixture
