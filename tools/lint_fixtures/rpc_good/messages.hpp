// Fixture: enum and contract table agree exactly (kEcho + bodyless kPing).
#pragma once

namespace fixture {

enum class Method : unsigned short {
  kEcho = 1,
  kPing = 2,
};

struct EchoReq {
  int value = 0;
};

struct EchoResp {
  int value = 0;
};

}  // namespace fixture
