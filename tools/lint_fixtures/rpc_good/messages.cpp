// Fixture: both message structs round-trip (encode and decode defined).
namespace fixture {

void EchoReq::encode() {}
void EchoReq::decode() {}
void EchoResp::encode() {}
void EchoResp::decode() {}

}  // namespace fixture
