// Fixture: every owned method has a dispatch arm here.
namespace fixture {

void serve(Method method) {
  if (method == Method::kPing) {
    return;
  }
  switch (method) {
    case Method::kEcho:
      break;
    default:
      break;
  }
}

}  // namespace fixture
