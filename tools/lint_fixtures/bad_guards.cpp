// Fixture: two locking-contract violations — a raw std::mutex (invisible to
// thread safety analysis) and a common::Mutex that guards nothing.
#include <mutex>

namespace common {
struct Mutex {};
}  // namespace common

namespace fixture {

struct Unchecked {
  std::mutex raw_;  // violation: raw mutex, no capability annotations
  common::Mutex mu_;  // violation: no member in this file is guarded by it
  int value_ = 0;
};

}  // namespace fixture
