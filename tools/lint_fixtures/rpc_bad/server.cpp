// Fixture: the server owning kEcho never dispatches it.
namespace fixture {

void serve() {
  // No dispatch switch at all.
}

}  // namespace fixture
