// Fixture: EchoResp::decode is missing — the wire contract is one-way.
namespace fixture {

void EchoReq::encode() {}
void EchoReq::decode() {}
void EchoResp::encode() {}

}  // namespace fixture
