// Fixture: the enum and the contract table disagree in both directions.
// kOrphan has no table row; the table's kPing names no enumerator here.
#pragma once

namespace fixture {

enum class Method : unsigned short {
  kEcho = 1,
  kOrphan = 2,
};

struct EchoReq {
  int value = 0;
};

struct EchoResp {
  int value = 0;
};

}  // namespace fixture
