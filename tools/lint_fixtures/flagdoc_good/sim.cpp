// Fixture: the parsed flag set and the readme table agree exactly.
namespace fixture {

int run(const Flags& flags) {
  std::string unknown;
  if (!flags.validate({"alpha", "beta"}, &unknown)) {
    return 2;
  }
  return 0;
}

}  // namespace fixture
