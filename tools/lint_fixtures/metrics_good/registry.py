# Fixture registry: exactly the names registrations.cpp registers.
METRIC_SCOPES = ()

REGISTERED_METRICS = {
    "fixture.requests": "counter",
    "fixture.depth": "gauge",
    "fixture.shard.<i>.ops": "counter",
}


def check_obs(obs):
    return obs.get("fixture.requests", 0) >= 0
