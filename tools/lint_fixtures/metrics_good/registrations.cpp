// Fixture: every registration is known to the registry with the right
// kind, including one dynamic (concatenated) site.
namespace fixture {

void register_all(Registry& registry, int shard) {
  registry.counter("fixture.requests");
  registry.gauge("fixture.depth");
  registry.counter("fixture.shard." + std::to_string(shard) + ".ops");
}

}  // namespace fixture
