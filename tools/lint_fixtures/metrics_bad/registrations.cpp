// Fixture: one unknown registration, one kind mismatch, and the registry
// carries a dead family plus a check on an unregistered name (4 findings
// total across this tree).
namespace fixture {

void register_all(Registry& registry) {
  registry.counter("fixture.requests");  // known, right kind: clean
  registry.counter("fixture.mystery");   // unknown to the registry
  registry.counter("fixture.depth");     // registry says gauge: mismatch
}

}  // namespace fixture
