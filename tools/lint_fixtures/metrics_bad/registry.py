# Fixture registry: 'fixture.dead.family' is registered by nothing in the
# fixture tree, and the check below validates a name no pattern registers.
METRIC_SCOPES = ()

REGISTERED_METRICS = {
    "fixture.requests": "counter",
    "fixture.depth": "gauge",
    "fixture.dead.family": "counter",
}


def check_obs(obs):
    return obs.get("fixture.unknown_name", 0) >= 0
