// Fixture: parses --alpha and --beta; the readme documents --beta and a
// phantom --gamma (2 findings: alpha undocumented, gamma unparsed).
namespace fixture {

int run(const Flags& flags) {
  std::string unknown;
  if (!flags.validate({"alpha", "beta"}, &unknown)) {
    return 2;
  }
  return 0;
}

}  // namespace fixture
