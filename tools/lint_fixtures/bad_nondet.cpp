// Fixture: four distinct nondeterminism violations, one per construct the
// check knows. The comment mentioning steady_clock must NOT count.
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace fixture {

struct Sim {
  std::unordered_map<int, int> flows_;
  std::map<const int*, int> by_ptr_;  // violation: pointer-keyed ordering

  double now() {
    // steady_clock in prose is fine; the call below is not.
    auto t = std::chrono::steady_clock::now();  // violation: wall clock
    return static_cast<double>(t.time_since_epoch().count());
  }

  int draw() { return rand(); }  // violation: ambient randomness

  int checksum() {
    int total = 0;
    for (const auto& kv : flows_) {  // violation: hash-order iteration
      total ^= kv.second;
    }
    return total;
  }
};

}  // namespace fixture
