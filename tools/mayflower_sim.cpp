// mayflower_sim: run one custom replica/path-selection experiment from the
// command line and print the paper-style metrics.
//
// Examples:
//   mayflower_sim --scheme=mayflower --lambda=0.1
//   mayflower_sim --scheme=nearest-ecmp --locality=0.2,0.3,0.5 --oversub=16
//   mayflower_sim --scheme=mayflower --jobs=2000 --block-mb=128 --seeds=1,2,3
//
// Schemes: mayflower, sinbad-mayflower, sinbad-ecmp, nearest-mayflower,
//          nearest-ecmp, random-ecmp, hdfs-ecmp, hdfs-mayflower,
//          mayflower-no-multiread, mayflower-no-freeze, mayflower-greedy.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "harness/experiment.hpp"
#include "harness/meta_experiment.hpp"
#include "harness/report.hpp"
#include "harness/write_experiment.hpp"
#include "obs/observability.hpp"
#include "policy/write_placement.hpp"

using namespace mayflower;

namespace {

const std::pair<const char*, harness::SchemeKind> kSchemes[] = {
    {"mayflower", harness::SchemeKind::kMayflower},
    {"sinbad-mayflower", harness::SchemeKind::kSinbadMayflower},
    {"sinbad-ecmp", harness::SchemeKind::kSinbadEcmp},
    {"nearest-mayflower", harness::SchemeKind::kNearestMayflower},
    {"nearest-ecmp", harness::SchemeKind::kNearestEcmp},
    {"random-ecmp", harness::SchemeKind::kRandomEcmp},
    {"nearest-hedera", harness::SchemeKind::kNearestHedera},
    {"sinbad-hedera", harness::SchemeKind::kSinbadHedera},
    {"hdfs-ecmp", harness::SchemeKind::kHdfsEcmp},
    {"hdfs-mayflower", harness::SchemeKind::kHdfsMayflower},
    {"mayflower-no-multiread", harness::SchemeKind::kMayflowerNoMultiread},
    {"mayflower-no-freeze", harness::SchemeKind::kMayflowerNoFreeze},
    {"mayflower-greedy", harness::SchemeKind::kMayflowerGreedy},
};

void usage() {
  std::printf(
      "usage: mayflower_sim [--scheme=NAME] [--lambda=F] "
      "[--locality=R,P,O]\n"
      "                     [--oversub=N] [--jobs=N] [--warmup=N] "
      "[--files=N]\n"
      "                     [--block-mb=N] [--seeds=a,b,...] "
      "[--poll-sec=F]\n"
      "                     [--no-multiread] [--no-freeze] "
      "[--batch-size=N]\n"
      "                     [--decision-threads=N] "
      "[--topology=three_tier|fat_tree]\n"
      "                     [--fat-k=N] [--shard-state] [--poll-groups=N]\n"
      "                     [--poll-budget=N] [--mouse-period=N]\n"
      "                     [--shard-metrics] [--csv=FILE] "
      "[--metrics-out=FILE]\n"
      "                     [--meta-shards=N] [--meta-async] "
      "[--meta-partition=hash|subtree]\n"
      "                     [--meta-ops=N] [--meta-service-us=F]\n"
      "                     [--write-placement=static|model|measured] "
      "[--write-pipeline=on|off]\n"
      "                     [--write-jobs=N] [--write-lambda=F] "
      "[--write-frac=F]\n"
      "\nschemes:");
  for (const auto& [name, kind] : kSchemes) {
    std::printf(" %s", name);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("help")) {
    usage();
    return 0;
  }
  std::string unknown;
  if (!flags.validate({"scheme", "lambda", "locality", "oversub", "jobs",
                       "warmup", "files", "block-mb", "seeds", "poll-sec",
                       "no-multiread", "no-freeze", "batch-size",
                       "decision-threads", "topology", "fat-k", "shard-state",
                       "poll-groups", "poll-budget", "mouse-period",
                       "shard-metrics", "csv", "metrics-out",
                       "meta-shards", "meta-async", "meta-partition",
                       "meta-ops", "meta-service-us", "write-placement",
                       "write-pipeline", "write-jobs", "write-lambda",
                       "write-frac", "help"},
                      &unknown)) {
    std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    usage();
    return 2;
  }

  harness::ExperimentConfig cfg;
  const std::string scheme = flags.get_string("scheme", "mayflower");
  bool matched = false;
  for (const auto& [name, kind] : kSchemes) {
    if (scheme == name) {
      cfg.scheme = kind;
      matched = true;
    }
  }
  if (!matched) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    usage();
    return 2;
  }

  cfg.gen.lambda_per_server = flags.get_double("lambda", 0.07);
  const auto locality = flags.get_double_list("locality");
  if (locality.size() == 3) {
    cfg.gen.locality = workload::Locality{locality[0], locality[1]};
  } else if (!locality.empty()) {
    std::fprintf(stderr, "--locality expects R,P,O\n");
    return 2;
  }
  cfg.fabric = net::ThreeTierConfig::with_oversubscription(
      flags.get_double("oversub", 8.0));
  // Fabric selection: the paper's oversubscribed 3-tier tree (default) or a
  // full-bisection k-ary fat-tree (--topology=fat_tree --fat-k=16).
  const std::string topology = flags.get_string("topology", "three_tier");
  if (topology == "fat_tree") {
    cfg.fabric_kind = harness::FabricKind::kFatTree;
    const long long fat_k = flags.get_int("fat-k", 8);
    if (fat_k < 2 || fat_k % 2 != 0) {
      std::fprintf(stderr, "--fat-k must be even and >= 2\n");
      return 2;
    }
    cfg.fat_tree.k = static_cast<std::uint32_t>(fat_k);
  } else if (topology != "three_tier") {
    std::fprintf(stderr, "unknown topology '%s'\n", topology.c_str());
    return 2;
  }
  // Sharded state plane: partition the Flowserver's table and view by edge
  // switch. Decisions are byte-identical with or without the flag.
  if (flags.get_bool("shard-state")) cfg.flowserver.shard_by_edge = true;
  const long long poll_groups = flags.get_int("poll-groups", 1);
  if (poll_groups < 1) {
    std::fprintf(stderr, "--poll-groups must be >= 1\n");
    return 2;
  }
  cfg.flowserver.poll_groups = static_cast<std::size_t>(poll_groups);
  // Adaptive budgeted telemetry (DESIGN.md §14). --poll-budget=0 means no
  // per-tick cap; --mouse-period=1 keeps mice at full-rate cadence. Both at
  // their defaults leave the adaptive layer off entirely.
  const long long poll_budget = flags.get_int("poll-budget", 0);
  const long long mouse_period = flags.get_int("mouse-period", 1);
  if (poll_budget < 0 || mouse_period < 1) {
    std::fprintf(stderr,
                 "--poll-budget must be >= 0 and --mouse-period >= 1\n");
    return 2;
  }
  cfg.flowserver.telemetry.samples_budget =
      static_cast<std::size_t>(poll_budget);
  cfg.flowserver.telemetry.mouse_period =
      static_cast<std::size_t>(mouse_period);
  if (flags.get_bool("shard-metrics")) cfg.flowserver.shard_metrics = true;
  cfg.gen.total_jobs = static_cast<std::size_t>(flags.get_int("jobs", 1100));
  cfg.warmup_jobs = static_cast<std::size_t>(flags.get_int("warmup", 100));
  cfg.catalog.num_files =
      static_cast<std::size_t>(flags.get_int("files", 400));
  cfg.catalog.file_bytes = flags.get_double("block-mb", 256.0) * 1e6;
  cfg.flowserver.poll_interval =
      sim::SimTime::from_seconds(flags.get_double("poll-sec", 1.0));
  if (flags.get_bool("no-multiread")) {
    cfg.flowserver.multiread_enabled = false;
  }
  if (flags.get_bool("no-freeze")) cfg.flowserver.freeze_enabled = false;
  // Admission batching: 1 (default) reproduces the synchronous decision
  // path exactly; N > 1 drains up to N queued reads per decision batch.
  const long long batch = flags.get_int("batch-size", 1);
  if (batch < 1) {
    std::fprintf(stderr, "--batch-size must be >= 1\n");
    return 2;
  }
  cfg.flowserver.batch_size = static_cast<std::size_t>(batch);
  // Decision parallelism: 0 (default) is the legacy serial pipeline; N >= 1
  // evaluates each batch against one immutable snapshot with N workers.
  // Decisions are identical at every N by construction.
  const long long threads = flags.get_int("decision-threads", 0);
  if (threads < 0) {
    std::fprintf(stderr, "--decision-threads must be >= 0\n");
    return 2;
  }
  cfg.flowserver.decision_threads = static_cast<std::size_t>(threads);

  // Sharded metadata plane phase: when --meta-ops > 0, each seed also runs
  // the metadata-heavy workload against an fs::Cluster with --meta-shards
  // nameserver shards (0 = the classic single nameserver) and prints
  // "meta ..." report lines. With --meta-ops=0 (default) the meta flags
  // change nothing, so the main phase stays byte-identical.
  const long long meta_shards = flags.get_int("meta-shards", 0);
  const long long meta_ops = flags.get_int("meta-ops", 0);
  if (meta_shards < 0 || meta_ops < 0) {
    std::fprintf(stderr, "--meta-shards/--meta-ops must be >= 0\n");
    return 2;
  }
  const std::string meta_partition_name =
      flags.get_string("meta-partition", "hash");
  fs::meta::Partition meta_partition = fs::meta::Partition::kHash;
  if (meta_partition_name == "subtree") {
    meta_partition = fs::meta::Partition::kSubtree;
  } else if (meta_partition_name != "hash") {
    std::fprintf(stderr, "--meta-partition must be hash or subtree\n");
    return 2;
  }
  const bool meta_async = flags.get_bool("meta-async");
  const double meta_service_us = flags.get_double("meta-service-us", 50.0);
  if (meta_service_us < 0.0) {
    std::fprintf(stderr, "--meta-service-us must be >= 0\n");
    return 2;
  }

  // Write-path phase: when --write-jobs > 0, each seed also runs the
  // write-heavy mixed tenant (harness/write_experiment.hpp) with the
  // selected placement policy and replication transport, and prints
  // "write ..." report lines. With --write-jobs=0 (default) the write
  // flags change nothing, so the main phase stays byte-identical — that is
  // the identity contract ci.sh pins with --write-placement=static
  // --write-pipeline=off.
  const std::string write_placement_name =
      flags.get_string("write-placement", "static");
  const auto write_placement =
      policy::parse_write_placement(write_placement_name);
  if (!write_placement.has_value()) {
    std::fprintf(stderr,
                 "--write-placement must be static, model or measured\n");
    return 2;
  }
  const std::string write_pipeline_name =
      flags.get_string("write-pipeline", "off");
  if (write_pipeline_name != "on" && write_pipeline_name != "off") {
    std::fprintf(stderr, "--write-pipeline must be on or off\n");
    return 2;
  }
  const bool write_pipeline = write_pipeline_name == "on";
  const long long write_jobs = flags.get_int("write-jobs", 0);
  const double write_lambda = flags.get_double("write-lambda", 0.03);
  const double write_frac = flags.get_double("write-frac", 0.7);
  if (write_jobs < 0 || write_lambda <= 0.0 || write_frac < 0.0 ||
      write_frac > 1.0) {
    std::fprintf(stderr,
                 "--write-jobs must be >= 0, --write-lambda > 0 and "
                 "--write-frac in [0, 1]\n");
    return 2;
  }

  if (!flags.errors().empty()) {
    for (const std::string& e : flags.errors()) {
      std::fprintf(stderr, "%s\n", e.c_str());
    }
    return 2;
  }

  std::vector<std::uint64_t> seeds;
  for (const double s : flags.get_double_list("seeds")) {
    seeds.push_back(static_cast<std::uint64_t>(s));
  }
  if (seeds.empty()) seeds = {1};

  const std::string metrics_path = flags.get_string("metrics-out");

  harness::RunResult pooled;
  std::vector<std::pair<std::uint64_t, harness::MetaRunResult>> meta_results;
  std::vector<std::pair<std::uint64_t, harness::WriteRunResult>>
      write_results;
  std::string metrics_json;   // accumulating "runs" array body
  std::vector<double> estimator_errors;  // pooled across seeds
  std::vector<double> belief_errors;     // poll-time table-vs-actual, pooled
  for (const std::uint64_t seed : seeds) {
    cfg.seed = seed;
    // One hub per seed: flow cookies restart from 1 each run, so traces
    // from different seeds must not share a tracer.
    std::unique_ptr<obs::Observability> hub;
    if (!metrics_path.empty()) {
      hub = std::make_unique<obs::Observability>();
      cfg.obs = hub.get();
    }
    const harness::RunResult r = harness::run_experiment(cfg);
    pooled.scheme = r.scheme;
    pooled.completions.insert(pooled.completions.end(), r.completions.begin(),
                              r.completions.end());
    pooled.incomplete += r.incomplete;
    pooled.split_reads += r.split_reads;
    pooled.selections += r.selections;
    pooled.samples_applied += r.samples_applied;
    pooled.samples_deferred_mouse += r.samples_deferred_mouse;
    pooled.samples_deferred_budget += r.samples_deferred_budget;
    pooled.telemetry_promotions += r.telemetry_promotions;
    pooled.telemetry_demotions += r.telemetry_demotions;
    pooled.poll_cycles += r.poll_cycles;
    // Metadata phase: its own cluster and (when requested) its own hub, so
    // the main run's decision/flow traces are untouched by meta traffic.
    std::unique_ptr<obs::Observability> meta_hub;
    if (meta_ops > 0) {
      harness::MetaExperimentConfig meta_cfg;
      meta_cfg.shards = static_cast<std::size_t>(meta_shards);
      meta_cfg.partition = meta_partition;
      meta_cfg.async_commits = meta_async;
      meta_cfg.service_time_us = meta_service_us;
      meta_cfg.workload.total_ops = static_cast<std::size_t>(meta_ops);
      meta_cfg.seed = seed;
      if (!metrics_path.empty()) {
        meta_hub = std::make_unique<obs::Observability>();
        meta_cfg.obs = meta_hub.get();
      }
      meta_results.emplace_back(seed, harness::run_meta_experiment(meta_cfg));
    }
    // Write-path phase: its own cluster and (when requested) its own hub,
    // mirroring the metadata phase.
    std::unique_ptr<obs::Observability> write_hub;
    if (write_jobs > 0) {
      harness::WriteExperimentConfig write_cfg;
      write_cfg.placement = *write_placement;
      write_cfg.pipeline = write_pipeline;
      write_cfg.write_fraction = write_frac;
      write_cfg.lambda_per_server = write_lambda;
      write_cfg.total_jobs = static_cast<std::size_t>(write_jobs);
      write_cfg.warmup_jobs =
          std::min<std::size_t>(write_cfg.total_jobs / 8, 25);
      write_cfg.decision_threads = cfg.flowserver.decision_threads;
      write_cfg.seed = seed;
      if (!metrics_path.empty()) {
        write_hub = std::make_unique<obs::Observability>();
        write_cfg.obs = write_hub.get();
      }
      write_results.emplace_back(seed,
                                 harness::run_write_experiment(write_cfg));
    }
    if (hub != nullptr) {
      if (!metrics_json.empty()) metrics_json.push_back(',');
      metrics_json += strfmt("{\"seed\":%llu,\"obs\":",
                             static_cast<unsigned long long>(seed));
      metrics_json += hub->to_json();
      if (meta_hub != nullptr) {
        metrics_json += ",\"meta_obs\":";
        metrics_json += meta_hub->to_json();
      }
      if (write_hub != nullptr) {
        metrics_json += ",\"write_obs\":";
        metrics_json += write_hub->to_json();
      }
      metrics_json.push_back('}');
      const std::vector<double> errs = hub->trace.estimator_errors();
      estimator_errors.insert(estimator_errors.end(), errs.begin(),
                              errs.end());
      const std::vector<double>& beliefs = hub->trace.belief_errors();
      belief_errors.insert(belief_errors.end(), beliefs.begin(),
                           beliefs.end());
      cfg.obs = nullptr;
    }
  }
  pooled.summary = summarize(pooled.completions);

  const Interval ci = mean_confidence_interval(pooled.completions);
  std::printf("scheme          %s\n", pooled.scheme.c_str());
  std::printf("jobs measured   %zu (%zu incomplete at cap)\n",
              pooled.completions.size(), pooled.incomplete);
  std::printf("avg             %.3f s  [%.3f, %.3f] 95%% CI\n",
              pooled.summary.mean, ci.lo, ci.hi);
  std::printf("p50 / p95 / p99 %.3f / %.3f / %.3f s\n", pooled.summary.p50,
              pooled.summary.p95, pooled.summary.p99);
  std::printf("min / max       %.3f / %.3f s\n", pooled.summary.min,
              pooled.summary.max);
  if (pooled.selections > 0) {
    std::printf("split reads     %llu of %llu selections\n",
                static_cast<unsigned long long>(pooled.split_reads),
                static_cast<unsigned long long>(pooled.selections));
  }
  if (!estimator_errors.empty()) {
    // |planned − realized| / realized per completed flow, pooled over seeds.
    const Summary err = summarize(estimator_errors);
    std::printf("est. error      mean %.4f  p50/p95/p99 %.4f/%.4f/%.4f "
                "(%zu flows)\n",
                err.mean, err.p50, err.p95, err.p99,
                estimator_errors.size());
  }
  if (!belief_errors.empty()) {
    // |table belief − actual rate| / actual rate per poll sample: accuracy
    // of the bandwidth state selections trust (what the freeze protects).
    const Summary err = summarize(belief_errors);
    std::printf("belief error    mean %.4f  p50/p95/p99 %.4f/%.4f/%.4f "
                "(%zu samples)\n",
                err.mean, err.p50, err.p95, err.p99, belief_errors.size());
  }

  // Adaptive-telemetry report (DESIGN.md §14): printed only when the layer
  // is active so default runs stay byte-identical (ci.sh strips "^telemetry"
  // when diffing a budgeted run against the legacy report).
  if (poll_budget > 0 || mouse_period > 1) {
    std::printf("telemetry       budget %lld  mouse-period %lld\n",
                poll_budget, mouse_period);
    std::printf("telemetry       applied %llu  deferred mouse %llu  "
                "deferred budget %llu\n",
                static_cast<unsigned long long>(pooled.samples_applied),
                static_cast<unsigned long long>(pooled.samples_deferred_mouse),
                static_cast<unsigned long long>(
                    pooled.samples_deferred_budget));
    const double per_cycle =
        pooled.poll_cycles > 0
            ? static_cast<double>(pooled.samples_applied) /
                  static_cast<double>(pooled.poll_cycles)
            : 0.0;
    std::printf("telemetry       promotions %llu  demotions %llu  "
                "applied/cycle %.2f\n",
                static_cast<unsigned long long>(pooled.telemetry_promotions),
                static_cast<unsigned long long>(pooled.telemetry_demotions),
                per_cycle);
  }

  if (!meta_results.empty()) {
    std::printf("meta plane      shards %lld  partition %s  commits %s  "
                "service %.1f us\n",
                meta_shards, meta_partition_name.c_str(),
                meta_async ? "async" : "sync", meta_service_us);
    for (const auto& [seed, m] : meta_results) {
      std::printf("meta seed %-5llu ops/s %.0f  ops %llu  errors %llu  "
                  "makespan %.3f s\n",
                  static_cast<unsigned long long>(seed), m.ops_per_sec,
                  static_cast<unsigned long long>(m.ops),
                  static_cast<unsigned long long>(m.errors), m.makespan_sec);
      std::printf("meta seed %-5llu lookup p50/p95/p99 %.3f/%.3f/%.3f ms  "
                  "first-byte %.3f ms\n",
                  static_cast<unsigned long long>(seed),
                  m.lookup_latency.p50 * 1e3, m.lookup_latency.p95 * 1e3,
                  m.lookup_latency.p99 * 1e3,
                  m.mean_create_to_first_byte_sec * 1e3);
      std::printf("meta seed %-5llu map_fetches %llu  wrong_shard %llu  "
                  "failovers %llu\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(m.map_fetches),
                  static_cast<unsigned long long>(m.wrong_shard_retries),
                  static_cast<unsigned long long>(m.failovers));
    }
  }

  if (!write_results.empty()) {
    std::printf("write path      placement %s  pipeline %s  frac %.2f  "
                "lambda %.3f\n",
                write_placement_name.c_str(), write_pipeline_name.c_str(),
                write_frac, write_lambda);
    for (const auto& [seed, w] : write_results) {
      std::printf("write seed %-4llu append avg/p50/p95 %.3f/%.3f/%.3f s  "
                  "read avg %.3f s\n",
                  static_cast<unsigned long long>(seed),
                  w.write_completion.mean, w.write_completion.p50,
                  w.write_completion.p95, w.read_completion.mean);
      std::printf("write seed %-4llu writes %zu  reads %zu  incomplete %zu  "
                  "chains %llu  chain_appends %llu  relay_failures %llu\n",
                  static_cast<unsigned long long>(seed), w.writes, w.reads,
                  w.incomplete,
                  static_cast<unsigned long long>(w.chains_planned),
                  static_cast<unsigned long long>(w.chain_appends),
                  static_cast<unsigned long long>(w.relay_failures));
    }
  }

  if (!metrics_path.empty()) {
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::string doc = "{\"schema_version\":1,\"scheme\":\"";
    doc += pooled.scheme;
    doc += "\",\"runs\":[";
    doc += metrics_json;
    doc += "]}";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  // Optional per-job dump for external plotting.
  const std::string csv_path = flags.get_string("csv");
  if (!csv_path.empty()) {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    std::fprintf(f, "job,completion_seconds\n");
    for (std::size_t i = 0; i < pooled.completions.size(); ++i) {
      std::fprintf(f, "%zu,%.6f\n", i, pooled.completions[i]);
    }
    std::fclose(f);
    std::printf("wrote %zu samples to %s\n", pooled.completions.size(),
                csv_path.c_str());
  }
  return 0;
}
