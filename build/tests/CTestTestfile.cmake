# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_paths[1]_include.cmake")
include("/root/repo/build/tests/test_fair_share[1]_include.cmake")
include("/root/repo/build/tests/test_flow_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sdn[1]_include.cmake")
include("/root/repo/build/tests/test_flow_state[1]_include.cmake")
include("/root/repo/build/tests/test_bandwidth_model[1]_include.cmake")
include("/root/repo/build/tests/test_selector_figure2[1]_include.cmake")
include("/root/repo/build/tests/test_multiread[1]_include.cmake")
include("/root/repo/build/tests/test_flowserver[1]_include.cmake")
include("/root/repo/build/tests/test_replica_policies[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_kvstore[1]_include.cmake")
include("/root/repo/build/tests/test_extents[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_fs_servers[1]_include.cmake")
include("/root/repo/build/tests/test_fs_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_flags[1]_include.cmake")
include("/root/repo/build/tests/test_hedera[1]_include.cmake")
include("/root/repo/build/tests/test_fat_tree[1]_include.cmake")
