# Empty dependencies file for test_flowserver.
# This may be replaced when dependencies are built.
