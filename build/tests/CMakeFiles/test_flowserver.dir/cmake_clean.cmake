file(REMOVE_RECURSE
  "CMakeFiles/test_flowserver.dir/test_flowserver.cpp.o"
  "CMakeFiles/test_flowserver.dir/test_flowserver.cpp.o.d"
  "test_flowserver"
  "test_flowserver.pdb"
  "test_flowserver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flowserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
