file(REMOVE_RECURSE
  "CMakeFiles/test_bandwidth_model.dir/test_bandwidth_model.cpp.o"
  "CMakeFiles/test_bandwidth_model.dir/test_bandwidth_model.cpp.o.d"
  "test_bandwidth_model"
  "test_bandwidth_model.pdb"
  "test_bandwidth_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandwidth_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
