file(REMOVE_RECURSE
  "CMakeFiles/test_fs_cluster.dir/test_fs_cluster.cpp.o"
  "CMakeFiles/test_fs_cluster.dir/test_fs_cluster.cpp.o.d"
  "test_fs_cluster"
  "test_fs_cluster.pdb"
  "test_fs_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
