# Empty dependencies file for test_fs_cluster.
# This may be replaced when dependencies are built.
