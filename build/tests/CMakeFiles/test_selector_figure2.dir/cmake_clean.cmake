file(REMOVE_RECURSE
  "CMakeFiles/test_selector_figure2.dir/test_selector_figure2.cpp.o"
  "CMakeFiles/test_selector_figure2.dir/test_selector_figure2.cpp.o.d"
  "test_selector_figure2"
  "test_selector_figure2.pdb"
  "test_selector_figure2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selector_figure2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
