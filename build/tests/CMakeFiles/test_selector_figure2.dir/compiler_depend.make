# Empty compiler generated dependencies file for test_selector_figure2.
# This may be replaced when dependencies are built.
