# Empty dependencies file for test_fs_servers.
# This may be replaced when dependencies are built.
