file(REMOVE_RECURSE
  "CMakeFiles/test_fs_servers.dir/test_fs_servers.cpp.o"
  "CMakeFiles/test_fs_servers.dir/test_fs_servers.cpp.o.d"
  "test_fs_servers"
  "test_fs_servers.pdb"
  "test_fs_servers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
