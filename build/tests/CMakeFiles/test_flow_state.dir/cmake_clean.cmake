file(REMOVE_RECURSE
  "CMakeFiles/test_flow_state.dir/test_flow_state.cpp.o"
  "CMakeFiles/test_flow_state.dir/test_flow_state.cpp.o.d"
  "test_flow_state"
  "test_flow_state.pdb"
  "test_flow_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
