# Empty compiler generated dependencies file for test_flow_state.
# This may be replaced when dependencies are built.
