# Empty dependencies file for test_multiread.
# This may be replaced when dependencies are built.
