file(REMOVE_RECURSE
  "CMakeFiles/test_multiread.dir/test_multiread.cpp.o"
  "CMakeFiles/test_multiread.dir/test_multiread.cpp.o.d"
  "test_multiread"
  "test_multiread.pdb"
  "test_multiread[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
