# Empty compiler generated dependencies file for test_multiread.
# This may be replaced when dependencies are built.
