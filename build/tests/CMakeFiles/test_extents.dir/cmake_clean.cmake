file(REMOVE_RECURSE
  "CMakeFiles/test_extents.dir/test_extents.cpp.o"
  "CMakeFiles/test_extents.dir/test_extents.cpp.o.d"
  "test_extents"
  "test_extents.pdb"
  "test_extents[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
