# Empty dependencies file for test_extents.
# This may be replaced when dependencies are built.
