file(REMOVE_RECURSE
  "CMakeFiles/test_replica_policies.dir/test_replica_policies.cpp.o"
  "CMakeFiles/test_replica_policies.dir/test_replica_policies.cpp.o.d"
  "test_replica_policies"
  "test_replica_policies.pdb"
  "test_replica_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
