# Empty dependencies file for test_replica_policies.
# This may be replaced when dependencies are built.
