# Empty compiler generated dependencies file for test_hedera.
# This may be replaced when dependencies are built.
