file(REMOVE_RECURSE
  "CMakeFiles/test_hedera.dir/test_hedera.cpp.o"
  "CMakeFiles/test_hedera.dir/test_hedera.cpp.o.d"
  "test_hedera"
  "test_hedera.pdb"
  "test_hedera[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hedera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
