# Empty compiler generated dependencies file for mayflower_sim.
# This may be replaced when dependencies are built.
