file(REMOVE_RECURSE
  "libmayflower_sim.a"
)
