file(REMOVE_RECURSE
  "CMakeFiles/mayflower_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mayflower_sim.dir/event_queue.cpp.o.d"
  "libmayflower_sim.a"
  "libmayflower_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
