
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdn/fabric.cpp" "src/sdn/CMakeFiles/mayflower_sdn.dir/fabric.cpp.o" "gcc" "src/sdn/CMakeFiles/mayflower_sdn.dir/fabric.cpp.o.d"
  "/root/repo/src/sdn/stats_poller.cpp" "src/sdn/CMakeFiles/mayflower_sdn.dir/stats_poller.cpp.o" "gcc" "src/sdn/CMakeFiles/mayflower_sdn.dir/stats_poller.cpp.o.d"
  "/root/repo/src/sdn/switch.cpp" "src/sdn/CMakeFiles/mayflower_sdn.dir/switch.cpp.o" "gcc" "src/sdn/CMakeFiles/mayflower_sdn.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mayflower_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mayflower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mayflower_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
