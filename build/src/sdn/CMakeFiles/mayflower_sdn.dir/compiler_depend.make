# Empty compiler generated dependencies file for mayflower_sdn.
# This may be replaced when dependencies are built.
