file(REMOVE_RECURSE
  "libmayflower_sdn.a"
)
