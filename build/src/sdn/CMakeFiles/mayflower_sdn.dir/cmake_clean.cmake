file(REMOVE_RECURSE
  "CMakeFiles/mayflower_sdn.dir/fabric.cpp.o"
  "CMakeFiles/mayflower_sdn.dir/fabric.cpp.o.d"
  "CMakeFiles/mayflower_sdn.dir/stats_poller.cpp.o"
  "CMakeFiles/mayflower_sdn.dir/stats_poller.cpp.o.d"
  "CMakeFiles/mayflower_sdn.dir/switch.cpp.o"
  "CMakeFiles/mayflower_sdn.dir/switch.cpp.o.d"
  "libmayflower_sdn.a"
  "libmayflower_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
