# Empty dependencies file for mayflower_flowserver.
# This may be replaced when dependencies are built.
