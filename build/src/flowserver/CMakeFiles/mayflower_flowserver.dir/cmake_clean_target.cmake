file(REMOVE_RECURSE
  "libmayflower_flowserver.a"
)
