file(REMOVE_RECURSE
  "CMakeFiles/mayflower_flowserver.dir/bandwidth_model.cpp.o"
  "CMakeFiles/mayflower_flowserver.dir/bandwidth_model.cpp.o.d"
  "CMakeFiles/mayflower_flowserver.dir/flow_state.cpp.o"
  "CMakeFiles/mayflower_flowserver.dir/flow_state.cpp.o.d"
  "CMakeFiles/mayflower_flowserver.dir/flowserver.cpp.o"
  "CMakeFiles/mayflower_flowserver.dir/flowserver.cpp.o.d"
  "CMakeFiles/mayflower_flowserver.dir/multiread.cpp.o"
  "CMakeFiles/mayflower_flowserver.dir/multiread.cpp.o.d"
  "CMakeFiles/mayflower_flowserver.dir/selector.cpp.o"
  "CMakeFiles/mayflower_flowserver.dir/selector.cpp.o.d"
  "libmayflower_flowserver.a"
  "libmayflower_flowserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_flowserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
