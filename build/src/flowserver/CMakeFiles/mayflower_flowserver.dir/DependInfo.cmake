
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowserver/bandwidth_model.cpp" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/bandwidth_model.cpp.o" "gcc" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/bandwidth_model.cpp.o.d"
  "/root/repo/src/flowserver/flow_state.cpp" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/flow_state.cpp.o" "gcc" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/flow_state.cpp.o.d"
  "/root/repo/src/flowserver/flowserver.cpp" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/flowserver.cpp.o" "gcc" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/flowserver.cpp.o.d"
  "/root/repo/src/flowserver/multiread.cpp" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/multiread.cpp.o" "gcc" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/multiread.cpp.o.d"
  "/root/repo/src/flowserver/selector.cpp" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/selector.cpp.o" "gcc" "src/flowserver/CMakeFiles/mayflower_flowserver.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdn/CMakeFiles/mayflower_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mayflower_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mayflower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mayflower_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
