file(REMOVE_RECURSE
  "libmayflower_harness.a"
)
