# Empty dependencies file for mayflower_harness.
# This may be replaced when dependencies are built.
