file(REMOVE_RECURSE
  "CMakeFiles/mayflower_harness.dir/experiment.cpp.o"
  "CMakeFiles/mayflower_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/mayflower_harness.dir/report.cpp.o"
  "CMakeFiles/mayflower_harness.dir/report.cpp.o.d"
  "libmayflower_harness.a"
  "libmayflower_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
