
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cpp" "src/harness/CMakeFiles/mayflower_harness.dir/experiment.cpp.o" "gcc" "src/harness/CMakeFiles/mayflower_harness.dir/experiment.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/mayflower_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/mayflower_harness.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policy/CMakeFiles/mayflower_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mayflower_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/flowserver/CMakeFiles/mayflower_flowserver.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/mayflower_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mayflower_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mayflower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mayflower_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
