file(REMOVE_RECURSE
  "CMakeFiles/mayflower_fs.dir/client.cpp.o"
  "CMakeFiles/mayflower_fs.dir/client.cpp.o.d"
  "CMakeFiles/mayflower_fs.dir/cluster.cpp.o"
  "CMakeFiles/mayflower_fs.dir/cluster.cpp.o.d"
  "CMakeFiles/mayflower_fs.dir/data.cpp.o"
  "CMakeFiles/mayflower_fs.dir/data.cpp.o.d"
  "CMakeFiles/mayflower_fs.dir/dataserver.cpp.o"
  "CMakeFiles/mayflower_fs.dir/dataserver.cpp.o.d"
  "CMakeFiles/mayflower_fs.dir/flowserver_service.cpp.o"
  "CMakeFiles/mayflower_fs.dir/flowserver_service.cpp.o.d"
  "CMakeFiles/mayflower_fs.dir/kv/kvstore.cpp.o"
  "CMakeFiles/mayflower_fs.dir/kv/kvstore.cpp.o.d"
  "CMakeFiles/mayflower_fs.dir/nameserver.cpp.o"
  "CMakeFiles/mayflower_fs.dir/nameserver.cpp.o.d"
  "CMakeFiles/mayflower_fs.dir/rpc/messages.cpp.o"
  "CMakeFiles/mayflower_fs.dir/rpc/messages.cpp.o.d"
  "CMakeFiles/mayflower_fs.dir/rpc/transport.cpp.o"
  "CMakeFiles/mayflower_fs.dir/rpc/transport.cpp.o.d"
  "libmayflower_fs.a"
  "libmayflower_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
