
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/client.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/client.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/client.cpp.o.d"
  "/root/repo/src/fs/cluster.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/cluster.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/cluster.cpp.o.d"
  "/root/repo/src/fs/data.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/data.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/data.cpp.o.d"
  "/root/repo/src/fs/dataserver.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/dataserver.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/dataserver.cpp.o.d"
  "/root/repo/src/fs/flowserver_service.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/flowserver_service.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/flowserver_service.cpp.o.d"
  "/root/repo/src/fs/kv/kvstore.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/kv/kvstore.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/kv/kvstore.cpp.o.d"
  "/root/repo/src/fs/nameserver.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/nameserver.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/nameserver.cpp.o.d"
  "/root/repo/src/fs/rpc/messages.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/rpc/messages.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/rpc/messages.cpp.o.d"
  "/root/repo/src/fs/rpc/transport.cpp" "src/fs/CMakeFiles/mayflower_fs.dir/rpc/transport.cpp.o" "gcc" "src/fs/CMakeFiles/mayflower_fs.dir/rpc/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policy/CMakeFiles/mayflower_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mayflower_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/mayflower_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/flowserver/CMakeFiles/mayflower_flowserver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mayflower_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mayflower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mayflower_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
