# Empty compiler generated dependencies file for mayflower_fs.
# This may be replaced when dependencies are built.
