file(REMOVE_RECURSE
  "libmayflower_fs.a"
)
