# Empty dependencies file for mayflower_common.
# This may be replaced when dependencies are built.
