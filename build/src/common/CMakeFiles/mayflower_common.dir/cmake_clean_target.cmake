file(REMOVE_RECURSE
  "libmayflower_common.a"
)
