file(REMOVE_RECURSE
  "CMakeFiles/mayflower_common.dir/crc32.cpp.o"
  "CMakeFiles/mayflower_common.dir/crc32.cpp.o.d"
  "CMakeFiles/mayflower_common.dir/flags.cpp.o"
  "CMakeFiles/mayflower_common.dir/flags.cpp.o.d"
  "CMakeFiles/mayflower_common.dir/logging.cpp.o"
  "CMakeFiles/mayflower_common.dir/logging.cpp.o.d"
  "CMakeFiles/mayflower_common.dir/rng.cpp.o"
  "CMakeFiles/mayflower_common.dir/rng.cpp.o.d"
  "CMakeFiles/mayflower_common.dir/stats.cpp.o"
  "CMakeFiles/mayflower_common.dir/stats.cpp.o.d"
  "CMakeFiles/mayflower_common.dir/strings.cpp.o"
  "CMakeFiles/mayflower_common.dir/strings.cpp.o.d"
  "CMakeFiles/mayflower_common.dir/uuid.cpp.o"
  "CMakeFiles/mayflower_common.dir/uuid.cpp.o.d"
  "libmayflower_common.a"
  "libmayflower_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
