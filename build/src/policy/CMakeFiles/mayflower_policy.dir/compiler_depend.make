# Empty compiler generated dependencies file for mayflower_policy.
# This may be replaced when dependencies are built.
