file(REMOVE_RECURSE
  "libmayflower_policy.a"
)
