file(REMOVE_RECURSE
  "CMakeFiles/mayflower_policy.dir/hedera.cpp.o"
  "CMakeFiles/mayflower_policy.dir/hedera.cpp.o.d"
  "CMakeFiles/mayflower_policy.dir/replica_policy.cpp.o"
  "CMakeFiles/mayflower_policy.dir/replica_policy.cpp.o.d"
  "CMakeFiles/mayflower_policy.dir/scheme.cpp.o"
  "CMakeFiles/mayflower_policy.dir/scheme.cpp.o.d"
  "libmayflower_policy.a"
  "libmayflower_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
