file(REMOVE_RECURSE
  "libmayflower_net.a"
)
