# Empty dependencies file for mayflower_net.
# This may be replaced when dependencies are built.
