file(REMOVE_RECURSE
  "CMakeFiles/mayflower_net.dir/ecmp.cpp.o"
  "CMakeFiles/mayflower_net.dir/ecmp.cpp.o.d"
  "CMakeFiles/mayflower_net.dir/fair_share.cpp.o"
  "CMakeFiles/mayflower_net.dir/fair_share.cpp.o.d"
  "CMakeFiles/mayflower_net.dir/fat_tree.cpp.o"
  "CMakeFiles/mayflower_net.dir/fat_tree.cpp.o.d"
  "CMakeFiles/mayflower_net.dir/flow_sim.cpp.o"
  "CMakeFiles/mayflower_net.dir/flow_sim.cpp.o.d"
  "CMakeFiles/mayflower_net.dir/paths.cpp.o"
  "CMakeFiles/mayflower_net.dir/paths.cpp.o.d"
  "CMakeFiles/mayflower_net.dir/topology.cpp.o"
  "CMakeFiles/mayflower_net.dir/topology.cpp.o.d"
  "CMakeFiles/mayflower_net.dir/tree.cpp.o"
  "CMakeFiles/mayflower_net.dir/tree.cpp.o.d"
  "libmayflower_net.a"
  "libmayflower_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
