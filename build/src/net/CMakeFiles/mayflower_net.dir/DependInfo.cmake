
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ecmp.cpp" "src/net/CMakeFiles/mayflower_net.dir/ecmp.cpp.o" "gcc" "src/net/CMakeFiles/mayflower_net.dir/ecmp.cpp.o.d"
  "/root/repo/src/net/fair_share.cpp" "src/net/CMakeFiles/mayflower_net.dir/fair_share.cpp.o" "gcc" "src/net/CMakeFiles/mayflower_net.dir/fair_share.cpp.o.d"
  "/root/repo/src/net/fat_tree.cpp" "src/net/CMakeFiles/mayflower_net.dir/fat_tree.cpp.o" "gcc" "src/net/CMakeFiles/mayflower_net.dir/fat_tree.cpp.o.d"
  "/root/repo/src/net/flow_sim.cpp" "src/net/CMakeFiles/mayflower_net.dir/flow_sim.cpp.o" "gcc" "src/net/CMakeFiles/mayflower_net.dir/flow_sim.cpp.o.d"
  "/root/repo/src/net/paths.cpp" "src/net/CMakeFiles/mayflower_net.dir/paths.cpp.o" "gcc" "src/net/CMakeFiles/mayflower_net.dir/paths.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/mayflower_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/mayflower_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/tree.cpp" "src/net/CMakeFiles/mayflower_net.dir/tree.cpp.o" "gcc" "src/net/CMakeFiles/mayflower_net.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mayflower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mayflower_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
