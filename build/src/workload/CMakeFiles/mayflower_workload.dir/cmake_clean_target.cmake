file(REMOVE_RECURSE
  "libmayflower_workload.a"
)
