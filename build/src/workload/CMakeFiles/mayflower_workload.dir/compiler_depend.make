# Empty compiler generated dependencies file for mayflower_workload.
# This may be replaced when dependencies are built.
