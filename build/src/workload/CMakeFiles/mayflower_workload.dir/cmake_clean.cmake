file(REMOVE_RECURSE
  "CMakeFiles/mayflower_workload.dir/catalog.cpp.o"
  "CMakeFiles/mayflower_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/mayflower_workload.dir/generator.cpp.o"
  "CMakeFiles/mayflower_workload.dir/generator.cpp.o.d"
  "libmayflower_workload.a"
  "libmayflower_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
