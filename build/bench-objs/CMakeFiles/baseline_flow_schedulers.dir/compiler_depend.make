# Empty compiler generated dependencies file for baseline_flow_schedulers.
# This may be replaced when dependencies are built.
