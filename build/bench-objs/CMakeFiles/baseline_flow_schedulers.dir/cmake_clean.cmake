file(REMOVE_RECURSE
  "../bench/baseline_flow_schedulers"
  "../bench/baseline_flow_schedulers.pdb"
  "CMakeFiles/baseline_flow_schedulers.dir/baseline_flow_schedulers.cpp.o"
  "CMakeFiles/baseline_flow_schedulers.dir/baseline_flow_schedulers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_flow_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
