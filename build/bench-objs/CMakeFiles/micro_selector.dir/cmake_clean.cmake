file(REMOVE_RECURSE
  "../bench/micro_selector"
  "../bench/micro_selector.pdb"
  "CMakeFiles/micro_selector.dir/micro_selector.cpp.o"
  "CMakeFiles/micro_selector.dir/micro_selector.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
