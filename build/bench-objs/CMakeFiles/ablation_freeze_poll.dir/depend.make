# Empty dependencies file for ablation_freeze_poll.
# This may be replaced when dependencies are built.
