file(REMOVE_RECURSE
  "../bench/ablation_freeze_poll"
  "../bench/ablation_freeze_poll.pdb"
  "CMakeFiles/ablation_freeze_poll.dir/ablation_freeze_poll.cpp.o"
  "CMakeFiles/ablation_freeze_poll.dir/ablation_freeze_poll.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_freeze_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
