file(REMOVE_RECURSE
  "../bench/fig5_client_locality"
  "../bench/fig5_client_locality.pdb"
  "CMakeFiles/fig5_client_locality.dir/fig5_client_locality.cpp.o"
  "CMakeFiles/fig5_client_locality.dir/fig5_client_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_client_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
