# Empty dependencies file for fig5_client_locality.
# This may be replaced when dependencies are built.
