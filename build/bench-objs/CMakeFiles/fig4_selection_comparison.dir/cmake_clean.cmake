file(REMOVE_RECURSE
  "../bench/fig4_selection_comparison"
  "../bench/fig4_selection_comparison.pdb"
  "CMakeFiles/fig4_selection_comparison.dir/fig4_selection_comparison.cpp.o"
  "CMakeFiles/fig4_selection_comparison.dir/fig4_selection_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_selection_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
