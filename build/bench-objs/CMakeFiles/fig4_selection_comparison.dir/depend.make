# Empty dependencies file for fig4_selection_comparison.
# This may be replaced when dependencies are built.
