file(REMOVE_RECURSE
  "../bench/fig7_oversubscription"
  "../bench/fig7_oversubscription.pdb"
  "CMakeFiles/fig7_oversubscription.dir/fig7_oversubscription.cpp.o"
  "CMakeFiles/fig7_oversubscription.dir/fig7_oversubscription.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
