# Empty compiler generated dependencies file for fig7_oversubscription.
# This may be replaced when dependencies are built.
