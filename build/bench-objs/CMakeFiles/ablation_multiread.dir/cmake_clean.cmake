file(REMOVE_RECURSE
  "../bench/ablation_multiread"
  "../bench/ablation_multiread.pdb"
  "CMakeFiles/ablation_multiread.dir/ablation_multiread.cpp.o"
  "CMakeFiles/ablation_multiread.dir/ablation_multiread.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
