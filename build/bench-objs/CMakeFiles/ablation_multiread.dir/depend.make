# Empty dependencies file for ablation_multiread.
# This may be replaced when dependencies are built.
