# Empty compiler generated dependencies file for topology_sensitivity.
# This may be replaced when dependencies are built.
