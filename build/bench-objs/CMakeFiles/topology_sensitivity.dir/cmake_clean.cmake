file(REMOVE_RECURSE
  "../bench/topology_sensitivity"
  "../bench/topology_sensitivity.pdb"
  "CMakeFiles/topology_sensitivity.dir/topology_sensitivity.cpp.o"
  "CMakeFiles/topology_sensitivity.dir/topology_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
