# Empty dependencies file for fig6_job_rates.
# This may be replaced when dependencies are built.
