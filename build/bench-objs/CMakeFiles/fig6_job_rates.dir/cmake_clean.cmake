file(REMOVE_RECURSE
  "../bench/fig6_job_rates"
  "../bench/fig6_job_rates.pdb"
  "CMakeFiles/fig6_job_rates.dir/fig6_job_rates.cpp.o"
  "CMakeFiles/fig6_job_rates.dir/fig6_job_rates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_job_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
