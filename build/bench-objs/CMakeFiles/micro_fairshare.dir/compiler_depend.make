# Empty compiler generated dependencies file for micro_fairshare.
# This may be replaced when dependencies are built.
