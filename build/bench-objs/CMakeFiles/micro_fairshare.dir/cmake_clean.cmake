file(REMOVE_RECURSE
  "../bench/micro_fairshare"
  "../bench/micro_fairshare.pdb"
  "CMakeFiles/micro_fairshare.dir/micro_fairshare.cpp.o"
  "CMakeFiles/micro_fairshare.dir/micro_fairshare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fairshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
