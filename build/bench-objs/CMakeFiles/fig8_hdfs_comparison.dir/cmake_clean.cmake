file(REMOVE_RECURSE
  "../bench/fig8_hdfs_comparison"
  "../bench/fig8_hdfs_comparison.pdb"
  "CMakeFiles/fig8_hdfs_comparison.dir/fig8_hdfs_comparison.cpp.o"
  "CMakeFiles/fig8_hdfs_comparison.dir/fig8_hdfs_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hdfs_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
