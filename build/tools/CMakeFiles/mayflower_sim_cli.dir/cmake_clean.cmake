file(REMOVE_RECURSE
  "CMakeFiles/mayflower_sim_cli.dir/mayflower_sim.cpp.o"
  "CMakeFiles/mayflower_sim_cli.dir/mayflower_sim.cpp.o.d"
  "mayflower_sim"
  "mayflower_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mayflower_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
