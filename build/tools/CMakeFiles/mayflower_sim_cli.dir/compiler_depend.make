# Empty compiler generated dependencies file for mayflower_sim_cli.
# This may be replaced when dependencies are built.
