# Empty compiler generated dependencies file for parallel_read.
# This may be replaced when dependencies are built.
