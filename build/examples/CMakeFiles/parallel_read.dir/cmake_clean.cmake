file(REMOVE_RECURSE
  "CMakeFiles/parallel_read.dir/parallel_read.cpp.o"
  "CMakeFiles/parallel_read.dir/parallel_read.cpp.o.d"
  "parallel_read"
  "parallel_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
