file(REMOVE_RECURSE
  "CMakeFiles/datacenter_readstorm.dir/datacenter_readstorm.cpp.o"
  "CMakeFiles/datacenter_readstorm.dir/datacenter_readstorm.cpp.o.d"
  "datacenter_readstorm"
  "datacenter_readstorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_readstorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
