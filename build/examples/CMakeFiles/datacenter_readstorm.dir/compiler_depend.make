# Empty compiler generated dependencies file for datacenter_readstorm.
# This may be replaced when dependencies are built.
