// Fault degradation: read completion time versus injected failure rate for
// Mayflower, Nearest-ECMP and Sinbad-R-ECMP. Faults span the four classes
// the injector models (switch-switch link cuts, agg/core switch crashes,
// dataserver crashes, dataserver slow-downs); killed transfers are retried
// against surviving replicas with bounded backoff.
//
// Expected shape: at rate 0 every scheme reproduces its no-fault numbers
// exactly (same seeds, same workload draw). As the rate grows, schemes that
// re-select paths/replicas from live network state (Mayflower) degrade more
// gracefully than static ECMP hashing, which keeps betting on dead paths
// until the retry backoff rescues it.
#include "bench_common.hpp"

using namespace mayflower;

namespace {

void print_header() {
  std::printf("%-18s %14s %10s %10s %12s %12s %8s\n", "scheme",
              "faults/min", "avg (s)", "p95 (s)", "flow-fails",
              "faults-inj", "incompl");
}

void print_row(double rate, const harness::RunResult& r) {
  std::printf("%-18s %14.2f %10.2f %10.2f %12llu %12llu %8zu\n",
              r.scheme.c_str(), rate, r.summary.mean, r.summary.p95,
              static_cast<unsigned long long>(r.flow_failures),
              static_cast<unsigned long long>(r.faults_injected),
              r.incomplete);
}

}  // namespace

int main() {
  bench::print_banner("Fault degradation",
                      "completion time vs injected failure rate");
  const harness::SchemeKind kinds[] = {
      harness::SchemeKind::kMayflower,
      harness::SchemeKind::kNearestEcmp,
      harness::SchemeKind::kSinbadEcmp,
  };
  const double rates_per_minute[] = {0.0, 2.0, 6.0, 12.0};

  print_header();
  for (const auto kind : kinds) {
    for (const double rate : rates_per_minute) {
      harness::ExperimentConfig cfg = bench::paper_config(kind, 0.07);
      cfg.gen.total_jobs = 500;
      cfg.warmup_jobs = 50;
      cfg.faults.events_per_minute = rate;
      // Faults keep arriving for as long as the trace plausibly runs.
      cfg.faults.horizon = sim::SimTime::from_seconds(
          static_cast<double>(cfg.gen.total_jobs) /
          (cfg.gen.lambda_per_server * 64.0) * 2.0);
      cfg.faults.mean_downtime_sec = 10.0;
      const harness::RunResult r = bench::run_pooled(cfg, {1, 2});
      print_row(rate, r);
    }
    std::printf("\n");
  }
  return 0;
}
