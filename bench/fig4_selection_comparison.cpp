// Figure 4: average and 95th-percentile job completion times of the five
// replica/path selection schemes, normalized to Mayflower, with 50% of the
// clients located on the same rack as the primary replica (locality
// (0.5, 0.3, 0.2)) at lambda = 0.07 jobs/s/server.
//
// Paper reference points (normalized to Mayflower):
//   avg: mayflower 1x, sinbad-r mayflower 1.42x, sinbad-r ecmp 1.69x,
//        nearest mayflower 3.24x, nearest ecmp 3.42x
//   p95: 1x, 1.54x, 2.08x, 12.4x, 12.4x
#include "bench_common.hpp"

using namespace mayflower;

int main() {
  bench::print_banner("Figure 4",
                      "replica/path selection comparison, locality "
                      "(0.5, 0.3, 0.2), lambda=0.07");

  const harness::SchemeKind kinds[] = {
      harness::SchemeKind::kMayflower,
      harness::SchemeKind::kSinbadMayflower,
      harness::SchemeKind::kSinbadEcmp,
      harness::SchemeKind::kNearestMayflower,
      harness::SchemeKind::kNearestEcmp,
  };
  std::vector<harness::RunResult> results;
  for (const auto kind : kinds) {
    results.push_back(
        bench::run_pooled(bench::paper_config(kind), bench::default_seeds()));
  }
  harness::print_normalized_group(
      "Job completion time normalized to Mayflower "
      "(paper: 1 / 1.42 / 1.69 / 3.24 / 3.42 avg; 1 / 1.54 / 2.08 / 12.4 / "
      "12.4 p95)",
      results);
  return 0;
}
