// Shared configuration/runner helpers for the figure-reproduction benches.
//
// Paper defaults (§6.1): 64 hosts in 4 pods, 8:1 core-to-rack
// oversubscription, 1 Gbps edges, 256 MB blocks, Zipf(1.1) popularity,
// Poisson arrivals at lambda per server. Every bench pools several seeds so
// the printed confidence intervals are meaningful.
#pragma once

#include <cstdio>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace mayflower::bench {

inline harness::ExperimentConfig paper_config(harness::SchemeKind scheme,
                                              double lambda = 0.07) {
  harness::ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.catalog.num_files = 400;
  cfg.catalog.file_bytes = 256e6;
  cfg.gen.lambda_per_server = lambda;
  cfg.gen.total_jobs = 1100;
  cfg.warmup_jobs = 100;
  cfg.seed = 1;
  return cfg;
}

// Runs `config` under `seeds` different seeds and pools the per-job samples
// (splits/selections/incomplete are summed; sim duration is the max).
inline harness::RunResult run_pooled(harness::ExperimentConfig config,
                                     const std::vector<std::uint64_t>& seeds) {
  harness::RunResult pooled;
  for (const std::uint64_t seed : seeds) {
    config.seed = seed;
    harness::RunResult r = harness::run_experiment(config);
    pooled.scheme = r.scheme;
    pooled.completions.insert(pooled.completions.end(), r.completions.begin(),
                              r.completions.end());
    pooled.subflow_finish_gaps.insert(pooled.subflow_finish_gaps.end(),
                                      r.subflow_finish_gaps.begin(),
                                      r.subflow_finish_gaps.end());
    pooled.incomplete += r.incomplete;
    pooled.split_reads += r.split_reads;
    pooled.selections += r.selections;
    pooled.flow_failures += r.flow_failures;
    pooled.faults_injected += r.faults_injected;
    pooled.samples_applied += r.samples_applied;
    pooled.samples_deferred_mouse += r.samples_deferred_mouse;
    pooled.samples_deferred_budget += r.samples_deferred_budget;
    pooled.telemetry_promotions += r.telemetry_promotions;
    pooled.telemetry_demotions += r.telemetry_demotions;
    pooled.poll_cycles += r.poll_cycles;
    if (r.sim_duration_sec > pooled.sim_duration_sec) {
      pooled.sim_duration_sec = r.sim_duration_sec;
    }
  }
  pooled.summary = summarize(pooled.completions);
  return pooled;
}

inline const std::vector<std::uint64_t>& default_seeds() {
  static const std::vector<std::uint64_t> seeds{1, 2, 3};
  return seeds;
}

inline void print_banner(const char* artifact, const char* description) {
  std::printf(
      "==============================================================\n"
      "%s — %s\n"
      "Mayflower reproduction (simulated 64-host 3-tier fabric)\n"
      "==============================================================\n",
      artifact, description);
}

}  // namespace mayflower::bench
