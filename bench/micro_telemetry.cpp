// Micro-benchmark: belief error vs telemetry budget (DESIGN.md §14).
//
// A mouse-heavy 10k-flow workload on a k=16 fat-tree (1024 hosts, 8-host
// racks — flows spread wide so selection's O(flows-on-link) impact term
// stays cheap at this population):
//
//  * racks 0..99 hold the mice — per rack, four source hosts each serve 25
//    concurrent intra-rack readers, so every mouse gets ~5 MB/s of a
//    saturated 125 MB/s uplink (below the 6.25 MB/s mouse threshold).
//    Mice churn: each read completes after ~30 s and restarts after a
//    per-reader staggered gap (0/1.5/3 s), so the competitor count on
//    every uplink — and with it every mouse's true rate — fluctuates
//    continuously, and stale beliefs show up as belief error;
//  * rack 100 holds the elephants — one persistent lone reader plus a churn
//    elephant sharing the persistent flow's client downlink in a ~3 s on /
//    2 s off cycle, toggling the persistent flow between 62.5 and
//    125 MB/s. Elephants are exactly the flows adaptive telemetry must keep
//    polling at full rate to track.
//
// The same seeded workload runs under a sweep of telemetry configs (full
// rate, mouse-period only, and constrained budgets). Flow placement is
// forced (one replica, one intra-rack path), so the fluid simulation — and
// with it the belief-error sampling cadence — is identical across configs;
// rows differ only in which samples the budgeted sweep applies. Belief
// error is sampled at instrumentation (full) rate for deferred flows too,
// so each row's mean/p99 measures exactly the staleness its config buys.
//
// stdout is deterministic (pure simulation, no wall clock): CI reruns the
// binary and diffs. Acceptance (exit code): at least one sweep row applies
// >= 5x fewer samples per poll cycle than full-rate polling while keeping
// its belief-error mean within 2x of the full-rate mean (plus a small
// absolute floor so near-zero baselines don't make the ratio degenerate).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "flowserver/flowserver.hpp"
#include "net/fat_tree.hpp"
#include "net/tree.hpp"
#include "obs/observability.hpp"

namespace mayflower::flowserver {
namespace {

constexpr std::size_t kMouseRacks = 100;   // racks 0..99
constexpr std::size_t kSourcesPerRack = 4;
std::size_t g_mice_per_source = 25;        // 100 * 4 * 25 = 10000 mice
constexpr double kMouseBytes = 150e6;      // ~30 s at the ~5 MB/s share
constexpr double kElephantBytes = 1e12;    // persistent: never completes
constexpr double kChurnBytes = 187.5e6;    // ~3 s at its 62.5 MB/s share
constexpr double kChurnGapSec = 2.0;
constexpr double kWarmupSec = 8.0;
constexpr double kEndSec = 24.0;

struct SweepRow {
  const char* label;
  std::size_t budget;
  std::size_t mouse_period;
};

struct RowResult {
  double applied_per_cycle = 0.0;
  double belief_mean = 0.0;
  double belief_p99 = 0.0;
  std::uint64_t deferred_mouse = 0;
  std::uint64_t deferred_budget = 0;
  std::uint64_t demotions = 0;
  std::uint64_t promotions = 0;
  std::size_t belief_samples = 0;
};

// One client reading one forced replica; re-issued on completion so the
// population (and the rack's fair-share split) churns for the whole run.
void start_looping_read(Flowserver& server, sdn::SdnFabric& fabric,
                        net::NodeId client, net::NodeId replica, double bytes,
                        double restart_gap_sec) {
  const auto plan = server.select_for_read(client, {replica}, bytes);
  MAYFLOWER_ASSERT(plan.size() == 1);
  const ReadAssignment& a = plan.front();
  fabric.start_flow(
      a.cookie, a.path, a.bytes,
      [&server, &fabric, client, replica, bytes,
       restart_gap_sec](sdn::Cookie c, sim::SimTime) {
        server.flow_dropped(c);
        const auto restart = [&server, &fabric, client, replica, bytes,
                              restart_gap_sec] {
          start_looping_read(server, fabric, client, replica, bytes,
                             restart_gap_sec);
        };
        if (restart_gap_sec > 0.0) {
          fabric.events().schedule_in(
              sim::SimTime::from_seconds(restart_gap_sec), restart);
        } else {
          restart();
        }
      });
}

RowResult run_row(const net::ThreeTier& tree, const SweepRow& row) {
  sim::EventQueue events;
  sdn::SdnFabric fabric(events, tree.topo);
  obs::Observability hub;

  FlowserverConfig cfg;
  cfg.shard_by_edge = true;  // selection stays O(rack) at 10k flows
  cfg.telemetry.samples_budget = row.budget;
  cfg.telemetry.mouse_period = row.mouse_period;
  cfg.obs = &hub;
  Flowserver server(fabric, cfg);
  server.start();

  const std::size_t hosts_per_rack = tree.config.hosts_per_rack;
  Rng rng(0xD1CEULL);
  // Mice: in each mouse rack, hosts 0..3 serve, hosts 4..7 read. Initial
  // sizes are drawn uniformly so completions (and replacements) spread
  // evenly instead of arriving in one synchronized wave; the per-reader
  // restart gap cycles 0/1.5/3 s so uplink competitor counts fluctuate.
  for (std::size_t rack = 0; rack < kMouseRacks; ++rack) {
    const auto host = [&](std::size_t h) {
      return tree.hosts[rack * hosts_per_rack + h];
    };
    for (std::size_t s = 0; s < kSourcesPerRack; ++s) {
      for (std::size_t i = 0; i < g_mice_per_source; ++i) {
        const double first = kMouseBytes * rng.uniform(0.2, 1.0);
        start_looping_read(server, fabric, host(kSourcesPerRack + s),
                           host(s), first, 1.5 * static_cast<double>(i % 3));
      }
    }
  }
  // Elephants in rack 100: persistent lone reader plus the on/off churn
  // flow sharing the persistent reader's downlink (toggling its true rate
  // between 125 and 62.5 MB/s).
  const auto ehost = [&](std::size_t h) {
    return tree.hosts[kMouseRacks * hosts_per_rack + h];
  };
  start_looping_read(server, fabric, ehost(1), ehost(0), kElephantBytes, 0.0);
  start_looping_read(server, fabric, ehost(1), ehost(2), kChurnBytes,
                     kChurnGapSec);

  // Warmup: classification converges and the initial all-elephant cohort
  // demotes; measure applied samples and belief error after it.
  events.run_until(sim::SimTime::from_seconds(kWarmupSec + 0.25));
  const std::uint64_t samples0 = server.stats_samples();
  const std::uint64_t cycles0 =
      server.polls() / server.config().poll_groups;
  const std::size_t beliefs0 = hub.trace.belief_errors().size();

  events.run_until(sim::SimTime::from_seconds(kEndSec + 0.25));
  RowResult r;
  const std::uint64_t cycles =
      server.polls() / server.config().poll_groups - cycles0;
  MAYFLOWER_ASSERT(cycles > 0);
  r.applied_per_cycle =
      static_cast<double>(server.stats_samples() - samples0) /
      static_cast<double>(cycles);
  const std::vector<double>& beliefs = hub.trace.belief_errors();
  const std::vector<double> window(beliefs.begin() +
                                       static_cast<std::ptrdiff_t>(beliefs0),
                                   beliefs.end());
  const Summary s = summarize(window);
  r.belief_mean = s.mean;
  r.belief_p99 = s.p99;
  r.belief_samples = window.size();
  r.deferred_mouse = server.telemetry().deferred_mouse();
  r.deferred_budget = server.telemetry().deferred_budget();
  r.demotions = server.telemetry().demotions();
  r.promotions = server.telemetry().promotions();
  server.stop();
  return r;
}

int sweep_main() {
  const net::ThreeTier tree =
      net::three_tier_from_fat_tree(net::FatTreeConfig{16, 125e6});
  const SweepRow rows[] = {
      {"full-rate", 0, 1},
      {"period=8", 0, 8},
      {"budget=1000", 1000, 8},
      {"budget=500", 500, 8},
  };

  std::printf("micro_telemetry: belief error vs poll budget "
              "(%zu mice + 2 elephants on a k=16 fat-tree, "
              "%0.f s window after %0.f s "
              "warmup)\n",
              kMouseRacks * kSourcesPerRack * g_mice_per_source,
              kEndSec - kWarmupSec, kWarmupSec);
  std::vector<RowResult> results;
  for (const SweepRow& row : rows) {
    results.push_back(run_row(tree, row));
  }

  const RowResult& full = results.front();
  bool bar_met = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RowResult& r = results[i];
    const double reduction =
        r.applied_per_cycle > 0.0 ? full.applied_per_cycle / r.applied_per_cycle
                                  : 0.0;
    // Near-zero baselines make a pure ratio degenerate; the floor keeps the
    // bar meaningful when full-rate belief error is already tiny.
    const double belief_cap = 2.0 * full.belief_mean + 0.02;
    const bool qualifies = i > 0 && reduction >= 5.0 &&
                           r.belief_mean <= belief_cap;
    bar_met |= qualifies;
    std::printf("row %-12s budget %-5zu period %zu  applied/cycle %8.1f  "
                "reduction %5.2fx  belief mean %.4f p99 %.4f "
                "(%zu samples)\n",
                rows[i].label, rows[i].budget, rows[i].mouse_period,
                r.applied_per_cycle, reduction, r.belief_mean, r.belief_p99,
                r.belief_samples);
    std::printf("row %-12s deferred mouse %llu budget %llu  demotions %llu "
                "promotions %llu%s\n",
                rows[i].label,
                static_cast<unsigned long long>(r.deferred_mouse),
                static_cast<unsigned long long>(r.deferred_budget),
                static_cast<unsigned long long>(r.demotions),
                static_cast<unsigned long long>(r.promotions),
                qualifies ? "  [meets 5x/2x bar]" : "");
  }
  // The sampling cadence is instrumentation-rate for every config, so each
  // row must have seen exactly as many belief samples as full-rate polling;
  // a mismatch means a config changed the simulation itself.
  bool cadence_ok = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].belief_samples != full.belief_samples) {
      std::printf("FAIL: row %s saw %zu belief samples vs full-rate %zu\n",
                  rows[i].label, results[i].belief_samples,
                  full.belief_samples);
      cadence_ok = false;
    }
  }
  if (!bar_met) {
    std::printf("FAIL: no sweep row reached 5x sample reduction within 2x "
                "full-rate belief error\n");
  }
  std::printf("%s\n", (bar_met && cadence_ok) ? "PASS" : "FAIL");
  return (bar_met && cadence_ok) ? 0 : 1;
}

}  // namespace
}  // namespace mayflower::flowserver

int main(int argc, char** argv) {
  // Undocumented scale override for local profiling; CI runs the default.
  if (argc > 1) {
    mayflower::flowserver::g_mice_per_source =
        static_cast<std::size_t>(std::atoi(argv[1]));
  }
  return mayflower::flowserver::sweep_main();
}
