// Ablation (§4.3 + DESIGN.md choice #1 and #3):
//  * multi-replica parallel reads on/off — the paper reports up to a further
//    ~10% average completion-time reduction, and that the two subflows of a
//    256 MB read finish less than a second apart;
//  * greedy bandwidth-only cost (drop Eq. 2's impact term) vs the full cost.
#include "bench_common.hpp"

#include "common/strings.hpp"

using namespace mayflower;

int main() {
  bench::print_banner("Ablation: multi-read and cost terms",
                      "mayflower vs no-multiread vs greedy-bw, locality "
                      "(0.5, 0.3, 0.2)");

  for (const double lambda : {0.07, 0.10, 0.13}) {
    std::vector<harness::RunResult> results;
    for (const auto kind : {harness::SchemeKind::kMayflower,
                            harness::SchemeKind::kMayflowerNoMultiread,
                            harness::SchemeKind::kMayflowerGreedy}) {
      results.push_back(bench::run_pooled(bench::paper_config(kind, lambda),
                                          bench::default_seeds()));
    }
    harness::print_normalized_group(
        strfmt("lambda = %.2f (paper: multiread buys up to ~10%% on average)",
               lambda),
        results);

    const harness::RunResult& mf = results[0];
    if (!mf.subflow_finish_gaps.empty()) {
      const Summary gaps = summarize(mf.subflow_finish_gaps);
      std::printf(
          "  split reads: %llu/%llu selections; subflow finish gap "
          "avg %.3fs p95 %.3fs max %.3fs (paper: <1s for 256 MB)\n",
          static_cast<unsigned long long>(mf.split_reads),
          static_cast<unsigned long long>(mf.selections), gaps.mean, gaps.p95,
          gaps.max);
    }
  }
  return 0;
}
