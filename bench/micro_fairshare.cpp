// Microbenchmark: the max-min fair-share solver, the hot path of both the
// fluid simulator (global solve on every flow event) and the Flowserver's
// per-link water-filling.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "net/fair_share.hpp"
#include "net/paths.hpp"
#include "net/tree.hpp"

namespace mayflower::net {
namespace {

std::vector<FlowDemand> random_flows(const ThreeTier& tree, std::size_t n,
                                     Rng& rng) {
  std::vector<FlowDemand> flows(n);
  for (auto& f : flows) {
    const NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
    NodeId dst = src;
    while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
    const auto paths = shortest_paths(tree.topo, src, dst);
    f.links = paths[rng.next_below(paths.size())].links;
  }
  return flows;
}

void BM_SolveMaxMin(benchmark::State& state) {
  const ThreeTier tree = build_three_tier(ThreeTierConfig{});
  Rng rng(42);
  const auto flows =
      random_flows(tree, static_cast<std::size_t>(state.range(0)), rng);
  std::vector<double> caps;
  for (LinkId l = 0; l < tree.topo.link_count(); ++l) {
    caps.push_back(tree.topo.link(l).capacity_bps);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_max_min(flows, caps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolveMaxMin)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_WaterfillLink(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> demands;
  for (int i = 0; i < state.range(0); ++i) {
    demands.push_back(rng.bernoulli(0.3) ? kInfiniteDemand
                                         : rng.uniform(1e6, 125e6));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(waterfill_link(125e6, demands));
  }
}
BENCHMARK(BM_WaterfillLink)->RangeMultiplier(4)->Range(2, 512);

void BM_ShortestPathsCrossPod(benchmark::State& state) {
  const ThreeTier tree = build_three_tier(ThreeTierConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shortest_paths(tree.topo, tree.hosts[0], tree.hosts[16]));
  }
}
BENCHMARK(BM_ShortestPathsCrossPod);

}  // namespace
}  // namespace mayflower::net

BENCHMARK_MAIN();
