// Microbenchmarks for the filesystem substrates: the KV store's write/read
// path (the nameserver's hot loop), RPC serialization, and extent slicing/
// checksumming — the per-request CPU costs a deployment would pay.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "fs/data.hpp"
#include "fs/kv/kvstore.hpp"
#include "fs/rpc/messages.hpp"

namespace mayflower::fs {
namespace {

void BM_KvPut(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   strfmt("mayflower-kvbench-%d", static_cast<int>(::getpid()));
  std::filesystem::remove_all(dir);
  KvStore kv;
  KvStore::Options options;
  options.compact_after = 1u << 20;  // isolate the WAL append cost
  kv.open(dir, options);
  Rng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    kv.put(strfmt("f/file-%llu", static_cast<unsigned long long>(i++ % 4096)),
           "0123456789abcdef0123456789abcdef0123456789abcdef");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  kv.close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_KvPut);

void BM_KvGet(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() /
                   strfmt("mayflower-kvbench-g-%d", static_cast<int>(::getpid()));
  std::filesystem::remove_all(dir);
  KvStore kv;
  kv.open(dir);
  for (int i = 0; i < 4096; ++i) {
    kv.put(strfmt("f/file-%d", i), "value");
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kv.get(strfmt("f/file-%llu", static_cast<unsigned long long>(i++ % 4096))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  kv.close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_KvGet);

void BM_FileInfoRoundTrip(benchmark::State& state) {
  Rng rng(2);
  FileInfo info;
  info.uuid = Uuid::generate(rng);
  info.name = "warehouse/2026-07/part-00042.sst";
  info.size = 256'000'000;
  info.chunk_size = 256'000'000;
  info.replicas = {7, 21, 42};
  for (auto _ : state) {
    Writer w;
    info.encode(w);
    const Bytes b = w.take();
    Reader r(b);
    benchmark::DoNotOptimize(FileInfo::decode(r));
  }
}
BENCHMARK(BM_FileInfoRoundTrip);

void BM_ReadRespRoundTrip(benchmark::State& state) {
  // A 256 MB pattern payload: descriptor-sized on the wire.
  ReadResp resp;
  resp.data.append(Extent::pattern(1, 256'000'000));
  resp.file_size = 256'000'000;
  for (auto _ : state) {
    const Bytes b = resp.encode();
    Reader r(b);
    benchmark::DoNotOptimize(ReadResp::decode(r));
  }
}
BENCHMARK(BM_ReadRespRoundTrip);

void BM_ExtentSlice(benchmark::State& state) {
  ExtentList list;
  for (int i = 0; i < 64; ++i) {
    list.append(Extent::pattern(static_cast<std::uint64_t>(i), 4'000'000));
  }
  Rng rng(3);
  for (auto _ : state) {
    const std::uint64_t off = rng.next_below(list.size() - 1'000'000);
    benchmark::DoNotOptimize(list.slice(off, 1'000'000));
  }
}
BENCHMARK(BM_ExtentSlice);

void BM_ExtentChecksumPerMB(benchmark::State& state) {
  const Extent e = Extent::pattern(9, 1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.checksum());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1'000'000);
}
BENCHMARK(BM_ExtentChecksumPerMB);

}  // namespace
}  // namespace mayflower::fs

BENCHMARK_MAIN();
