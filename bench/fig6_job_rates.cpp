// Figure 6: absolute average and p95 job completion time versus per-server
// job arrival rate lambda.
//   (a) locality (0.5, 0.3, 0.2) — lambda in 0.06 .. 0.14;
//   (b) locality (0.2, 0.3, 0.5) — lambda in 0.06 .. 0.10 (core-heavy).
// Expected shape: all schemes converge at low lambda; Nearest-based schemes
// blow up first; Mayflower grows sub-linearly and stays lowest throughout.
#include "bench_common.hpp"

using namespace mayflower;

namespace {

void sweep(const char* title, const workload::Locality& locality,
           const std::vector<double>& lambdas) {
  std::printf("\n%s\n", title);
  harness::print_sweep_header("lambda");
  const harness::SchemeKind kinds[] = {
      harness::SchemeKind::kMayflower,
      harness::SchemeKind::kSinbadMayflower,
      harness::SchemeKind::kSinbadEcmp,
      harness::SchemeKind::kNearestMayflower,
      harness::SchemeKind::kNearestEcmp,
  };
  for (const auto kind : kinds) {
    for (const double lambda : lambdas) {
      harness::ExperimentConfig cfg = bench::paper_config(kind, lambda);
      cfg.gen.locality = locality;
      const harness::RunResult r = bench::run_pooled(cfg, {1, 2});
      harness::print_sweep_row(r.scheme, lambda, r);
    }
  }
}

}  // namespace

int main() {
  bench::print_banner("Figure 6", "impact of the job arrival rate");
  sweep("(a) locality (0.5, 0.3, 0.2) — 50% of clients rack-local",
        workload::Locality{0.5, 0.3},
        {0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.12, 0.13, 0.14});
  sweep("(b) locality (0.2, 0.3, 0.5) — 50% of reads traverse the core",
        workload::Locality{0.2, 0.3}, {0.06, 0.07, 0.08, 0.09, 0.10});
  return 0;
}
