// Microbenchmark for the incremental link-state substrate: flow churn
// (cancel one flow, start another) against a fabric carrying 10k concurrent
// flows, measured with the dirty-set incremental max-min recompute vs. the
// full progressive-filling solve on identical state.
//
// The workload models steady-state datacenter churn: 512 hosts, rack-level
// full bisection with 2:1 core oversubscription, and rate-limited flows
// (finite demands) so load concentrates in hot pockets instead of
// saturating every link — the regime where one flow's arrival or departure
// perturbs a neighborhood, not the whole fabric. (With every link
// saturated, exact max-min is globally coupled and FlowSim deliberately
// falls back to the full solve.)
//
// The acceptance bar for the substrate is a >= 5x per-event speedup; the
// binary measures both modes, prints the per-event cost and the realized
// speedup, then cross-checks that the incremental rates still match a
// from-scratch solve. Plain chrono timing (not google-benchmark): the two
// modes share mutable simulator state, so each must run as one timed block
// on the same flow population.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "net/flow_sim.hpp"
#include "net/paths.hpp"
#include "net/tree.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace mayflower;

constexpr std::size_t kConcurrentFlows = 10000;
constexpr int kIncrementalEvents = 400;
constexpr int kFullEvents = 10;
// Large enough that nothing completes during the run (the simulator skips
// scheduling completions beyond its ns horizon), so the population is stable.
constexpr double kFlowBytes = 1e18;

struct Churner {
  net::ThreeTier fabric;
  sim::EventQueue events;
  net::FlowSim sim;
  net::PathCache paths;
  Rng rng;
  std::vector<net::FlowId> ids;

  Churner()
      : fabric(net::build_three_tier([] {
          // 512 hosts: 8 pods x 8 racks x 8 hosts. Rack tier at full
          // bisection (4 x 250 MB/s uplinks vs 8 x 125 Mb/s hosts), pod
          // tier 2:1 oversubscribed.
          net::ThreeTierConfig cfg;
          cfg.pods = 8;
          cfg.racks_per_pod = 8;
          cfg.hosts_per_rack = 8;
          cfg.aggs_per_pod = 4;
          cfg.cores = 4;
          cfg.host_link_bps = 125e6;
          cfg.rack_uplink_bps = 250e6;
          cfg.agg_uplink_bps = 250e6;
          return cfg;
        }())),
        sim(events, fabric.topo),
        paths(fabric.topo),
        rng(42) {}

  net::Path random_path() {
    const std::size_t n = fabric.hosts.size();
    const net::NodeId src = fabric.hosts[rng.next_below(n)];
    net::NodeId dst = src;
    while (dst == src) dst = fabric.hosts[rng.next_below(n)];
    const auto& options = paths.get(src, dst);
    return options[rng.next_below(options.size())];
  }

  net::FlowId start_random_flow() {
    // Rate-limited transfers, 0.5-4.5 MB/s: host links average ~40%
    // utilized, so saturated pockets exist but changes stay local.
    const double demand = rng.uniform(0.5e6, 4.5e6);
    return sim.start_flow(random_path(), kFlowBytes, nullptr, 0, demand);
  }

  void churn_once() {
    const std::size_t victim = rng.next_below(ids.size());
    sim.cancel(ids[victim]);
    ids[victim] = start_random_flow();
  }

  // Seconds per churn event (one cancel + one start).
  double time_churn(int n) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) churn_once();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / n;
  }
};

}  // namespace

int main() {
  std::printf(
      "==============================================================\n"
      "micro_link_index — per-link flow index + dirty-set max-min\n"
      "churn at %zu concurrent flows, incremental vs full recompute\n"
      "==============================================================\n",
      kConcurrentFlows);
  std::fflush(stdout);

  Churner bench;

  // Population build runs incrementally; a full solve per start would make
  // setup itself quadratic in the flow count.
  bench.sim.set_incremental(true);
  {
    const auto t0 = std::chrono::steady_clock::now();
    bench.ids.reserve(kConcurrentFlows);
    for (std::size_t i = 0; i < kConcurrentFlows; ++i) {
      bench.ids.push_back(bench.start_random_flow());
    }
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("build: %zu flows in %.2f s (incremental mode)\n",
                bench.sim.active_flow_count(),
                std::chrono::duration<double>(t1 - t0).count());
    std::fflush(stdout);
  }

  // Warm-up, then the measured incremental block.
  bench.time_churn(50);
  const double inc_s = bench.time_churn(kIncrementalEvents);
  std::printf("incremental churn: %.3f ms/event (%d events)\n", inc_s * 1e3,
              kIncrementalEvents);
  std::fflush(stdout);

  bench.sim.set_incremental(false);
  const double full_s = bench.time_churn(kFullEvents);
  std::printf("full-solve churn:  %.3f ms/event (%d events)\n", full_s * 1e3,
              kFullEvents);

  const double speedup = full_s / inc_s;
  std::printf("speedup: %.1fx (target >= 5x) — %s\n", speedup,
              speedup >= 5.0 ? "PASS" : "FAIL");

  // Equivalence: switch back, perturb once, and require the incremental
  // allocation to match a from-scratch progressive-filling solve.
  bench.sim.set_incremental(true);
  bench.churn_once();
  const bool match = bench.sim.rates_match_full_solve();
  std::printf("incremental == full cross-check: %s\n",
              match ? "PASS" : "FAIL");
  return (speedup >= 5.0 && match) ? 0 : 1;
}
