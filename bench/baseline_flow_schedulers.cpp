// The §1 argument, quantified: "flow schedulers are limited to finding the
// least congested path between the requester and the pre-selected replica
// ... which makes them ineffective when all paths between the requester and
// the pre-selected replica are congested."
//
// We pit a faithful Hedera-style scheduler (periodic elephant detection +
// Global First Fit re-placement, reference [6]) against ECMP and against
// Mayflower's co-design, under both the edge-heavy and core-heavy workloads:
//  * edge-heavy (0.5, 0.3, 0.2): Nearest stacks flows on the primary's
//    access link — a flow scheduler has nothing to move, so
//    nearest-hedera ≈ nearest-ecmp while Mayflower sidesteps the hotspot;
//  * core-heavy (0.2, 0.3, 0.5): collisions happen on the oversubscribed
//    core where Hedera CAN help — but joint replica+path selection still
//    wins because it also picks *which* replica's paths to use.
#include "bench_common.hpp"

using namespace mayflower;

namespace {

void group(const char* title, const workload::Locality& locality,
           double lambda) {
  const harness::SchemeKind kinds[] = {
      harness::SchemeKind::kMayflower,
      harness::SchemeKind::kSinbadHedera,
      harness::SchemeKind::kSinbadEcmp,
      harness::SchemeKind::kNearestHedera,
      harness::SchemeKind::kNearestEcmp,
  };
  std::vector<harness::RunResult> results;
  for (const auto kind : kinds) {
    harness::ExperimentConfig cfg = bench::paper_config(kind, lambda);
    cfg.gen.locality = locality;
    results.push_back(bench::run_pooled(cfg, bench::default_seeds()));
  }
  harness::print_normalized_group(title, results);
}

}  // namespace

int main() {
  bench::print_banner("Flow-scheduler baselines",
                      "Hedera-style rescheduling vs ECMP vs co-design");
  group("edge-heavy: locality (0.5, 0.3, 0.2), lambda=0.07 — congestion at "
        "access links (schedulers cannot help)",
        workload::Locality{0.5, 0.3}, 0.07);
  group("core-heavy: locality (0.2, 0.3, 0.5), lambda=0.09 — congestion in "
        "the core (schedulers can help, co-design helps more)",
        workload::Locality{0.2, 0.3}, 0.09);
  return 0;
}
