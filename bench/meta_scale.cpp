// Metadata-plane scaling: metadata ops/s and lookup latency versus shard
// count under the metadata-heavy workload (small files, create/lookup/
// delete/append mix, Zipf popularity), plus a sync-vs-async commit
// comparison of create-to-first-byte latency at moderate load.
//
// Expected shape: with a modeled per-RPC service time the single nameserver
// is a CPU wall; sharding the namespace multiplies the plane's aggregate
// service capacity, so saturated throughput scales near-linearly until the
// arrival rate or hash imbalance binds. Async commits ack creates before
// replica provisioning completes, cutting create-to-first-byte by roughly
// the provisioning round trips.
//
// All printed numbers are simulated-time quantities (deterministic for the
// fixed seed); wall-clock goes to stderr. Exits non-zero if the 4-shard
// configuration fails the >= 3x ops/s bar over 1 shard, or if async commits
// fail to beat sync create-to-first-byte.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "harness/meta_experiment.hpp"

using namespace mayflower;

namespace {

harness::MetaExperimentConfig base_config(bool full) {
  harness::MetaExperimentConfig cfg;
  cfg.service_time_us = 100.0;  // one shard saturates near 10k RPCs/s
  cfg.client_hosts = 8;
  cfg.append_bytes = 8192.0;
  cfg.seed = 1;
  cfg.workload.total_ops = full ? 20'000 : 4'000;
  cfg.workload.path_space = 20'000;
  cfg.workload.dirs = 64;
  cfg.workload.ops_per_sec = 200'000.0;  // open loop, far beyond capacity
  return cfg;
}

void print_row(std::size_t shards, const harness::MetaRunResult& r,
               double base_ops_per_sec) {
  std::printf("%6zu %12.0f %8.2fx %10.2f %10.2f %10.2f %8llu %8llu\n", shards,
              r.ops_per_sec, r.ops_per_sec / base_ops_per_sec,
              r.lookup_latency.p50 * 1e3, r.lookup_latency.p95 * 1e3,
              r.lookup_latency.p99 * 1e3,
              static_cast<unsigned long long>(r.errors),
              static_cast<unsigned long long>(r.wrong_shard_retries));
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const auto wall_start = std::chrono::steady_clock::now();

  bench::print_banner("Metadata plane scaling",
                      "metadata ops/s and lookup latency vs shard count");

  std::printf("\nsaturated metadata throughput (sync commits, hash "
              "partition, %zu ops)\n",
              base_config(full).workload.total_ops);
  std::printf("%6s %12s %9s %10s %10s %10s %8s %8s\n", "shards", "ops/s",
              "speedup", "p50 (ms)", "p95 (ms)", "p99 (ms)", "errors",
              "reroutes");
  const std::size_t shard_counts[] = {1, 2, 4, 8};
  double base_ops_per_sec = 0.0;
  double four_shard_speedup = 0.0;
  for (const std::size_t shards : shard_counts) {
    harness::MetaExperimentConfig cfg = base_config(full);
    cfg.shards = shards;
    const harness::MetaRunResult r = harness::run_meta_experiment(cfg);
    if (shards == 1) base_ops_per_sec = r.ops_per_sec;
    if (shards == 4) four_shard_speedup = r.ops_per_sec / base_ops_per_sec;
    print_row(shards, r, base_ops_per_sec);
  }

  // Create-to-first-byte: moderate load (below 4-shard capacity) so the
  // comparison isolates the commit protocol instead of queueing delay.
  std::printf("\ncreate-to-first-byte latency (4 shards, moderate load)\n");
  std::printf("%8s %22s\n", "commits", "mean first-byte (ms)");
  double fb[2] = {0.0, 0.0};
  for (const bool async : {false, true}) {
    harness::MetaExperimentConfig cfg = base_config(full);
    cfg.shards = 4;
    cfg.async_commits = async;
    cfg.workload.total_ops = full ? 8'000 : 2'000;
    cfg.workload.ops_per_sec = 10'000.0;
    const harness::MetaRunResult r = harness::run_meta_experiment(cfg);
    fb[async ? 1 : 0] = r.mean_create_to_first_byte_sec;
    std::printf("%8s %22.3f\n", async ? "async" : "sync",
                r.mean_create_to_first_byte_sec * 1e3);
  }

  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  std::fprintf(stderr, "meta_scale wall-clock: %.1fs\n", wall);

  int rc = 0;
  if (four_shard_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: 4-shard speedup %.2fx below the 3x bar\n",
                 four_shard_speedup);
    rc = 1;
  }
  if (fb[1] >= fb[0]) {
    std::fprintf(stderr,
                 "FAIL: async create-to-first-byte %.3fms not below sync "
                 "%.3fms\n",
                 fb[1] * 1e3, fb[0] * 1e3);
    rc = 1;
  }
  return rc;
}
