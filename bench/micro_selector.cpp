// Microbenchmark: one replica–path selection (Pseudocode 1) against a state
// table preloaded with N tracked flows — the per-read control-plane cost a
// Flowserver deployment would pay.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "flowserver/selector.hpp"
#include "net/tree.hpp"

namespace mayflower::flowserver {
namespace {

void BM_SelectReplicaPath(benchmark::State& state) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  Rng rng(42);
  FlowStateTable table;
  net::PathCache cache(tree.topo);

  // Preload N in-flight flows on random shortest paths.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
    const auto& paths = cache.get(src, dst);
    table.add(static_cast<sdn::Cookie>(i + 1),
              paths[rng.next_below(paths.size())], 256e6,
              rng.uniform(1e6, 125e6), sim::SimTime{});
  }

  ReplicaPathSelector selector(tree.topo, cache, table);
  const std::vector<net::NodeId> replicas{tree.hosts[5], tree.hosts[20],
                                          tree.hosts[40]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(tree.hosts[0], replicas, 256e6));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectReplicaPath)->RangeMultiplier(4)->Range(1, 1024)->Complexity();

void BM_EvaluateSinglePath(benchmark::State& state) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  Rng rng(43);
  FlowStateTable table;
  net::PathCache cache(tree.topo);
  for (std::size_t i = 0; i < 128; ++i) {
    const net::NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
    const auto& paths = cache.get(src, dst);
    table.add(static_cast<sdn::Cookie>(i + 1),
              paths[rng.next_below(paths.size())], 256e6,
              rng.uniform(1e6, 125e6), sim::SimTime{});
  }
  BandwidthModel model(tree.topo, table);
  const auto& paths = cache.get(tree.hosts[16], tree.hosts[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate_path(model, table, tree.hosts[16], paths[0], 256e6));
  }
}
BENCHMARK(BM_EvaluateSinglePath);

}  // namespace
}  // namespace mayflower::flowserver

BENCHMARK_MAIN();
