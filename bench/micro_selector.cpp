// Microbenchmark: one replica–path selection (Pseudocode 1) against a state
// table preloaded with N tracked flows — the per-read control-plane cost a
// Flowserver deployment would pay.
//
// Four modes:
//  * default: google-benchmark micro timings of select() and evaluate_path()
//    against a prebuilt decision view;
//  * --flows: background-flow sweep on a k=8 fat-tree comparing the legacy
//    single-shard state plane against the edge-sharded one over an identical
//    churny request stream — decision records must be byte-identical (the
//    sharding invariant) and go to stdout for CI's determinism diff;
//  * --threads: drives one large decision batch through the snapshot
//    pipeline at decision_threads=1 and =8 over identical state. Decisions
//    must be byte-identical (always enforced — that is the pipeline's
//    design invariant) and the 8-worker drain must be >= 1.8x faster when
//    the host actually has cores to parallelize on (the bar is skipped,
//    loudly, below 4 hardware threads). Decisions go to stdout for CI's
//    two-run determinism diff; timings and verdicts go to stderr;
//  * --batch: drives a real Flowserver through its admission queue and
//    compares batch-of-one against batched drains over an identical request
//    stream. A large background population (confined to pod 2, away from
//    every request path) makes the view rebuild the dominant per-decision
//    cost; every admission is followed by a state-neutral invalidate (the
//    "telemetry may have landed" assumption), which batch-of-one pays as a
//    rebuild per decision while a batch of B coalesces into one rebuild per
//    drain. Admitted flows complete at a fixed window in BOTH modes, so the
//    two modes see byte-identical state at every decision point and their
//    decision records must match exactly. Decisions go to stdout (two
//    seeded runs must be byte-identical — CI diffs them); timings and the
//    >= 2x acceptance bar go to stderr, with a non-zero exit when the bar
//    or the batched-vs-single decision identity fails.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "flowserver/flowserver.hpp"
#include "flowserver/selector.hpp"
#include "net/fat_tree.hpp"
#include "net/tree.hpp"

namespace mayflower::flowserver {
namespace {

void BM_SelectReplicaPath(benchmark::State& state) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  Rng rng(42);
  FlowStateTable table;
  net::PathCache cache(tree.topo);

  // Preload N in-flight flows on random shortest paths.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
    const auto& paths = cache.get(src, dst);
    table.add(static_cast<sdn::Cookie>(i + 1),
              paths[rng.next_below(paths.size())], 256e6,
              rng.uniform(1e6, 125e6), sim::SimTime{});
  }

  ReplicaPathSelector selector(tree.topo, cache, table);
  const net::NetworkView view = make_decision_view(tree.topo, table);
  const std::vector<net::NodeId> replicas{tree.hosts[5], tree.hosts[20],
                                          tree.hosts[40]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        selector.select(view, tree.hosts[0], replicas, 256e6));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectReplicaPath)->RangeMultiplier(4)->Range(1, 1024)->Complexity();

void BM_BuildDecisionView(benchmark::State& state) {
  // The cost batching amortizes: snapshotting an N-flow table into a view.
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  Rng rng(44);
  FlowStateTable table;
  net::PathCache cache(tree.topo);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
    const auto& paths = cache.get(src, dst);
    table.add(static_cast<sdn::Cookie>(i + 1),
              paths[rng.next_below(paths.size())], 256e6,
              rng.uniform(1e6, 125e6), sim::SimTime{});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_decision_view(tree.topo, table));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildDecisionView)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_EvaluateSinglePath(benchmark::State& state) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  Rng rng(43);
  FlowStateTable table;
  net::PathCache cache(tree.topo);
  for (std::size_t i = 0; i < 128; ++i) {
    const net::NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
    const auto& paths = cache.get(src, dst);
    table.add(static_cast<sdn::Cookie>(i + 1),
              paths[rng.next_below(paths.size())], 256e6,
              rng.uniform(1e6, 125e6), sim::SimTime{});
  }
  BandwidthModel model;
  const net::NetworkView view = make_decision_view(tree.topo, table);
  const auto& paths = cache.get(tree.hosts[16], tree.hosts[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate_path(model, view, tree.hosts[16], paths[0], 256e6));
  }
}
BENCHMARK(BM_EvaluateSinglePath);

// --- --batch mode ---------------------------------------------------------

struct BatchRun {
  double selections_per_sec = 0.0;
  std::uint64_t view_rebuilds = 0;
  // One line per request: "replica path_len est_bw" — the decision record
  // CI diffs for determinism and this binary diffs across batch sizes.
  std::vector<std::string> decisions;
};

constexpr std::size_t kPreloadFlows = 2048;
constexpr std::size_t kRequests = 2048;
// Admitted flows complete this many requests after admission, in BOTH modes
// (aligned with the batched drain so state stays identical across modes).
constexpr std::size_t kChurnWindow = 16;

BatchRun run_batch_mode(std::size_t batch_size) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  sim::EventQueue events;
  sdn::SdnFabric fabric(events, tree.topo);

  FlowserverConfig cfg;
  cfg.batch_size = batch_size;
  Flowserver server(fabric, cfg);

  // Preload a steady-state population straight into the table, confined to
  // the LAST pod so its (intra-pod) flows dominate the snapshot cost without
  // ever crossing a request path: the per-decision cost under measurement
  // is the view REBUILD, not selection over a crowded fabric.
  Rng rng(42);
  net::PathCache preload_cache(tree.topo);
  const net::ThreeTierConfig tree_cfg;
  const std::size_t pod = tree_cfg.racks_per_pod * tree_cfg.hosts_per_rack;
  const std::size_t last_pod = tree.hosts.size() - pod;
  for (std::size_t i = 0; i < kPreloadFlows; ++i) {
    const net::NodeId src = tree.hosts[last_pod + rng.next_below(pod)];
    net::NodeId dst = src;
    while (dst == src) dst = tree.hosts[last_pod + rng.next_below(pod)];
    const auto& paths = preload_cache.get(src, dst);
    server.table().add(static_cast<sdn::Cookie>(1000000 + i),
                       paths[rng.next_below(paths.size())], 256e6,
                       rng.uniform(1e6, 125e6), sim::SimTime{});
  }

  // A deterministic request stream over the remaining pods (same seed for
  // every batch size, so the decision records must line up across modes).
  Rng req_rng(7);
  std::vector<net::NodeId> clients(kRequests);
  std::vector<std::vector<net::NodeId>> replica_sets(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    clients[i] = tree.hosts[req_rng.next_below(last_pod)];
    std::vector<net::NodeId> reps;
    while (reps.size() < 3) {
      const net::NodeId r = tree.hosts[req_rng.next_below(last_pod)];
      bool dup = r == clients[i];
      for (const net::NodeId seen : reps) dup |= (seen == r);
      if (!dup) reps.push_back(r);
    }
    replica_sets[i] = std::move(reps);
  }

  BatchRun run;
  run.decisions.reserve(kRequests);
  std::vector<sdn::Cookie> window_cookies;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kRequests; ++i) {
    server.enqueue_read(clients[i], replica_sets[i], 256e6,
                        [&](std::vector<ReadAssignment> plan) {
                          for (const ReadAssignment& a : plan) {
                            char line[96];
                            std::snprintf(line, sizeof line, "%u %zu %.6g",
                                          a.replica, a.path.links.size(),
                                          a.est_bw_bps);
                            run.decisions.emplace_back(line);
                            window_cookies.push_back(a.cookie);
                          }
                        });
    // Telemetry may land between any two admissions, so each boundary
    // treats the snapshot as stale. State is untouched — decisions don't
    // move — but batch-of-one now rebuilds per decision while a batch of B
    // coalesces the invalidations into one rebuild per drain.
    server.invalidate_view();
    if ((i + 1) % kChurnWindow == 0) {
      // The window's admitted flows complete, in both modes at the same
      // request index: the table a decision sees is identical whether its
      // batch held 1 or kChurnWindow requests.
      for (const sdn::Cookie c : window_cookies) server.flow_dropped(c);
      window_cookies.clear();
    }
  }
  server.drain();  // flush a final partial batch, if any
  const auto t1 = std::chrono::steady_clock::now();

  const double secs = std::chrono::duration<double>(t1 - t0).count();
  run.selections_per_sec = static_cast<double>(kRequests) / secs;
  run.view_rebuilds = server.view_rebuilds();
  return run;
}

int batch_main() {
  constexpr std::size_t kBatch = 16;
  const BatchRun single = run_batch_mode(1);
  const BatchRun batched = run_batch_mode(kBatch);

  // Decision records to stdout: CI runs this twice and diffs.
  for (const std::string& d : batched.decisions) std::printf("%s\n", d.c_str());

  const double speedup =
      batched.selections_per_sec / single.selections_per_sec;
  std::fprintf(stderr,
               "batch=1   %.0f selections/s  (%llu view rebuilds)\n"
               "batch=%zu  %.0f selections/s  (%llu view rebuilds)\n"
               "speedup   %.2fx (bar: >= 2x)\n",
               single.selections_per_sec,
               static_cast<unsigned long long>(single.view_rebuilds), kBatch,
               batched.selections_per_sec,
               static_cast<unsigned long long>(batched.view_rebuilds),
               speedup);

  bool ok = true;
  if (single.decisions != batched.decisions) {
    std::fprintf(stderr,
                 "FAIL: batched decisions diverge from batch-of-one\n");
    ok = false;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: batched admission speedup below 2x\n");
    ok = false;
  }
  if (ok) std::fprintf(stderr, "PASS\n");
  return ok ? 0 : 1;
}

// --- --threads mode -------------------------------------------------------

struct ThreadsRun {
  double drain_sec = 0.0;
  std::vector<std::string> decisions;  // same record format as --batch
};

// Fewer requests than --batch: every request here is a multiread plan over
// a fabric crowded with kPreloadFlows cross-pod flows (~tens of ms each
// serial), and the mode runs the batch twice.
constexpr std::size_t kThreadRequests = 256;

// One big admission batch decided by the snapshot pipeline with `threads`
// workers. The preload population spans ALL pods, so nearly every candidate
// path is crowded and evaluation (flows_on_path + reduced_share per
// candidate) dominates the drain — the part the worker pool parallelizes.
ThreadsRun run_threads_mode(std::size_t threads) {
  const net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  sim::EventQueue events;
  sdn::SdnFabric fabric(events, tree.topo);

  FlowserverConfig cfg;
  cfg.decision_threads = threads;
  cfg.batch_size = kThreadRequests * 4;  // never size-triggered
  Flowserver server(fabric, cfg);

  Rng rng(42);
  net::PathCache preload_cache(tree.topo);
  for (std::size_t i = 0; i < kPreloadFlows; ++i) {
    const net::NodeId src = tree.hosts[rng.next_below(tree.hosts.size())];
    net::NodeId dst = src;
    while (dst == src) dst = tree.hosts[rng.next_below(tree.hosts.size())];
    const auto& paths = preload_cache.get(src, dst);
    server.table().add(static_cast<sdn::Cookie>(1000000 + i),
                       paths[rng.next_below(paths.size())], 256e6,
                       rng.uniform(1e6, 125e6), sim::SimTime{});
  }

  Rng req_rng(7);
  std::vector<net::NodeId> clients(kThreadRequests);
  std::vector<std::vector<net::NodeId>> replica_sets(kThreadRequests);
  for (std::size_t i = 0; i < kThreadRequests; ++i) {
    clients[i] = tree.hosts[req_rng.next_below(tree.hosts.size())];
    std::vector<net::NodeId> reps;
    while (reps.size() < 3) {
      const net::NodeId r = tree.hosts[req_rng.next_below(tree.hosts.size())];
      bool dup = r == clients[i];
      for (const net::NodeId seen : reps) dup |= (seen == r);
      if (!dup) reps.push_back(r);
    }
    replica_sets[i] = std::move(reps);
  }

  // Warm-up drain: spins up the worker pool and populates the path cache so
  // the timed drain measures evaluation, not one-time setup. Identical at
  // every thread count, so decision identity is unaffected.
  server.post_read(clients[0], replica_sets[0], 256e6,
                   [](std::vector<ReadAssignment>) {});
  server.drain();

  ThreadsRun run;
  run.decisions.reserve(kThreadRequests);
  for (std::size_t i = 0; i < kThreadRequests; ++i) {
    server.post_read(clients[i], replica_sets[i], 256e6,
                     [&run](std::vector<ReadAssignment> plan) {
                       for (const ReadAssignment& a : plan) {
                         char line[96];
                         std::snprintf(line, sizeof line, "%u %zu %.6g",
                                       a.replica, a.path.links.size(),
                                       a.est_bw_bps);
                         run.decisions.emplace_back(line);
                       }
                     });
  }
  const auto t0 = std::chrono::steady_clock::now();
  server.drain();
  const auto t1 = std::chrono::steady_clock::now();
  run.drain_sec = std::chrono::duration<double>(t1 - t0).count();
  return run;
}

int threads_main() {
  const ThreadsRun serial = run_threads_mode(1);
  const ThreadsRun threaded = run_threads_mode(8);

  // Decision records to stdout: CI runs this twice and diffs.
  for (const std::string& d : threaded.decisions) {
    std::printf("%s\n", d.c_str());
  }

  const double speedup = serial.drain_sec / threaded.drain_sec;
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "threads=1  drain of %zu requests in %.3fs\n"
               "threads=8  drain of %zu requests in %.3fs\n"
               "speedup    %.2fx (bar: >= 1.8x on >= 4 hardware threads; "
               "host has %u)\n",
               kThreadRequests, serial.drain_sec, kThreadRequests,
               threaded.drain_sec,
               speedup, hw);

  bool ok = true;
  if (serial.decisions != threaded.decisions) {
    std::fprintf(stderr,
                 "FAIL: threads=8 decisions diverge from threads=1\n");
    ok = false;
  }
  if (hw >= 4) {
    if (speedup < 1.8) {
      std::fprintf(stderr, "FAIL: threaded drain speedup below 1.8x\n");
      ok = false;
    }
  } else {
    std::fprintf(stderr,
                 "NOTE: %u hardware thread(s) — speedup bar skipped "
                 "(identity still enforced)\n",
                 hw);
  }
  if (ok) std::fprintf(stderr, "PASS\n");
  return ok ? 0 : 1;
}

// --- --flows mode ---------------------------------------------------------
//
// Background-flow sweep on a k=8 fat-tree: for each population size, drive
// the same churny request stream through a LEGACY (single-shard) and a
// SHARDED (by edge switch) Flowserver. Each request is preceded by one
// background SETBW — under sharding that stales exactly one shard, so the
// per-request refresh reloads O(flows per edge) instead of re-copying the
// whole table. Decision records must be byte-identical across layouts (that
// is the sharding invariant) and go to stdout for CI's determinism diff;
// timings go to stderr. The >= 5x acceptance bar lives in macro_scale, which
// sweeps real k=16/k=32 fabrics — this mode is the quick shape check.

struct FlowsRun {
  double secs = 0.0;
  std::uint64_t shard_reloads = 0;
  std::uint64_t full_rebuilds = 0;
  std::vector<std::string> decisions;
};

constexpr std::size_t kFlowsRequests = 256;

FlowsRun run_flows_mode(const net::ThreeTier& tree, std::size_t flows,
                        bool sharded) {
  sim::EventQueue events;
  sdn::SdnFabric fabric(events, tree.topo);

  FlowserverConfig cfg;
  cfg.shard_by_edge = sharded;
  Flowserver server(fabric, cfg);

  // Background population: intra-pod flows spread over the whole fabric.
  Rng rng(42);
  net::PathCache preload_cache(tree.topo);
  const std::size_t hosts_per_pod =
      tree.hosts.size() / static_cast<std::size_t>(tree.config.pods);
  std::vector<sdn::Cookie> cookies;
  cookies.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    const std::size_t pod = rng.next_below(tree.config.pods);
    const net::NodeId src =
        tree.hosts[pod * hosts_per_pod + rng.next_below(hosts_per_pod)];
    net::NodeId dst = src;
    while (dst == src) {
      dst = tree.hosts[pod * hosts_per_pod + rng.next_below(hosts_per_pod)];
    }
    const auto& paths = preload_cache.get(src, dst);
    const auto cookie = static_cast<sdn::Cookie>(1000000 + i);
    server.table().add(cookie, paths[rng.next_below(paths.size())], 256e6,
                       rng.uniform(1e6, 125e6), sim::SimTime{});
    cookies.push_back(cookie);
  }

  // Same-pod replica sets keep selection itself cheap; the measured cost is
  // the refresh forced by the churn below.
  Rng req_rng(7);
  std::vector<net::NodeId> clients(kFlowsRequests);
  std::vector<std::vector<net::NodeId>> replica_sets(kFlowsRequests);
  for (std::size_t i = 0; i < kFlowsRequests; ++i) {
    const std::size_t pod = req_rng.next_below(tree.config.pods);
    clients[i] = tree.hosts[pod * hosts_per_pod +
                            req_rng.next_below(hosts_per_pod)];
    std::vector<net::NodeId> reps;
    while (reps.size() < 3) {
      const net::NodeId r = tree.hosts[pod * hosts_per_pod +
                                       req_rng.next_below(hosts_per_pod)];
      bool dup = r == clients[i];
      for (const net::NodeId seen : reps) dup |= (seen == r);
      if (!dup) reps.push_back(r);
    }
    replica_sets[i] = std::move(reps);
  }

  FlowsRun run;
  run.decisions.reserve(kFlowsRequests);
  Rng churn_rng(11);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kFlowsRequests; ++i) {
    // One background SETBW per request: stales the touched flow's shard
    // (sharded) or the whole table (legacy) before the decision below.
    const sdn::Cookie victim = cookies[churn_rng.next_below(cookies.size())];
    server.table().setbw(victim, churn_rng.uniform(1e6, 125e6),
                          sim::SimTime{});
    server.enqueue_read(clients[i], replica_sets[i], 256e6,
                        [&run](std::vector<ReadAssignment> plan) {
                          for (const ReadAssignment& a : plan) {
                            char line[96];
                            std::snprintf(line, sizeof line, "%u %zu %.6g",
                                          a.replica, a.path.links.size(),
                                          a.est_bw_bps);
                            run.decisions.emplace_back(line);
                          }
                        });
  }
  const auto t1 = std::chrono::steady_clock::now();
  run.secs = std::chrono::duration<double>(t1 - t0).count();
  run.shard_reloads = server.shard_reloads();
  run.full_rebuilds = server.full_view_rebuilds();
  return run;
}

int flows_main() {
  const net::ThreeTier tree =
      net::three_tier_from_fat_tree(net::FatTreeConfig{8, 125e6});
  constexpr std::size_t kSweep[] = {512, 2048, 8192};
  bool ok = true;
  for (const std::size_t flows : kSweep) {
    const FlowsRun legacy = run_flows_mode(tree, flows, false);
    const FlowsRun sharded = run_flows_mode(tree, flows, true);
    // Decision records to stdout: CI runs this twice and diffs. The sharded
    // run's records are printed; identity with legacy is enforced below.
    for (const std::string& d : sharded.decisions) {
      std::printf("%s\n", d.c_str());
    }
    std::fprintf(stderr,
                 "flows=%-5zu legacy  %8.0f selections/s (%llu full "
                 "rebuilds)\n"
                 "flows=%-5zu sharded %8.0f selections/s (%llu shard "
                 "reloads)  %.2fx\n",
                 flows, kFlowsRequests / legacy.secs,
                 static_cast<unsigned long long>(legacy.full_rebuilds), flows,
                 kFlowsRequests / sharded.secs,
                 static_cast<unsigned long long>(sharded.shard_reloads),
                 legacy.secs / sharded.secs);
    if (legacy.decisions != sharded.decisions) {
      std::fprintf(stderr,
                   "FAIL: sharded decisions diverge from legacy at "
                   "flows=%zu\n",
                   flows);
      ok = false;
    }
  }
  if (ok) std::fprintf(stderr, "PASS\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mayflower::flowserver

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--batch") == 0) {
    return mayflower::flowserver::batch_main();
  }
  if (argc > 1 && std::strcmp(argv[1], "--threads") == 0) {
    return mayflower::flowserver::threads_main();
  }
  if (argc > 1 && std::strcmp(argv[1], "--flows") == 0) {
    return mayflower::flowserver::flows_main();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
