// Write-path co-design sweep: placement policy (static / model / measured)
// crossed with the replication transport (legacy fan-out vs the
// Flowserver-planned pipelined chain) under a skewed background load —
// long-lived non-filesystem elephants pinned to half the pods, the traffic
// the believed-flow model cannot see but measured link rates can.
//
//   static          random constrained placement, ECMP write paths (the
//                   paper's evaluated system);
//   model           Flowserver-collaborative placement ranking targets by
//                   believed shares (blind to the elephants);
//   measured        collaborative placement ranking by residual headroom
//                   from polled link rates (sees the elephants);
//   ... +chain      appends additionally carry a kPlanWrite pipelined
//                   relay chain, every hop SETBW'd to the chain bottleneck.
//
// The bench exits non-zero unless (a) write decisions are byte-identical
// across decision_threads 1 and 8, and (b) pipelined+measured beats the
// static fan-out baseline by >= 2x on mean append completion.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "flowserver/flowserver.hpp"
#include "fs/cluster.hpp"
#include "net/paths.hpp"

using namespace mayflower;

namespace {

constexpr std::uint64_t kBlockBytes = 256'000'000;
// Effectively infinite: the elephants outlive the simulation.
constexpr double kElephantBytes = 1e15;

// Pods [0, hot_pods) carry one host-to-host elephant per host, endpoints
// drawn from the same hot set so the cold pods stay quiet.
void start_background_elephants(fs::Cluster& cluster, int hot_pods) {
  const net::ThreeTier& tree = cluster.tree();
  std::vector<net::NodeId> hot;
  for (const net::NodeId h : tree.hosts) {
    if (tree.pod_of(h) < hot_pods) hot.push_back(h);
  }
  net::PathCache paths(tree.topo);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    const net::NodeId src = hot[(i + 1) % hot.size()];
    const net::NodeId dst = hot[i];
    const auto& options = paths.get(src, dst);
    MAYFLOWER_ASSERT(!options.empty());
    const net::Path& path = options[i % options.size()];
    const sdn::Cookie cookie = cluster.fabric().new_cookie();
    cluster.fabric().install_path(cookie, path);
    cluster.fabric().start_flow(cookie, path, kElephantBytes);
  }
}

harness::RunResult run_write_path(policy::WritePlacementKind placement,
                                  bool pipelined, double lambda,
                                  std::uint64_t seed) {
  fs::ClusterConfig cfg;
  cfg.scheme = fs::FsScheme::kMayflower;
  cfg.write_placement = placement;
  cfg.collaborative_placement =
      placement != policy::WritePlacementKind::kStatic;
  cfg.write_pipeline = pipelined;
  cfg.nameserver.chunk_size = kBlockBytes;
  cfg.seed = seed;
  fs::Cluster cluster(cfg);
  const net::ThreeTier& tree = cluster.tree();
  start_background_elephants(cluster, /*hot_pods=*/2);

  constexpr std::size_t kJobs = 200;
  constexpr std::size_t kWarmup = 25;
  Rng rng(splitmix64(seed ^ 0x77e11ULL));
  harness::RunResult result;
  result.scheme = strfmt("%s+%s", policy::to_string(placement),
                         pipelined ? "chain" : "fanout");

  std::size_t done = 0;
  std::vector<double> durations(kJobs, -1.0);
  const double system_rate = lambda * static_cast<double>(tree.hosts.size());
  double arrival = 0.0;
  for (std::size_t j = 0; j < kJobs; ++j) {
    arrival += rng.exponential(system_rate);
    const net::NodeId writer_host =
        tree.hosts[rng.next_below(tree.hosts.size())];
    cluster.events().schedule_at(
        sim::SimTime::from_seconds(arrival),
        [&cluster, &durations, &done, j, writer_host] {
          const double start = cluster.events().now().seconds();
          const std::string name = strfmt("out-%04zu", j);
          fs::Client& writer = cluster.client_at(writer_host);
          writer.create(name, [&cluster, &writer, &durations, &done, j, name,
                               start](fs::Status s, const fs::FileInfo&) {
            MAYFLOWER_ASSERT(s == fs::Status::kOk);
            writer.append(
                name, fs::ExtentList(fs::Extent::pattern(j, kBlockBytes)),
                [&cluster, &durations, &done, j, start](
                    fs::Status as, const fs::AppendResp&) {
                  MAYFLOWER_ASSERT(as == fs::Status::kOk);
                  durations[j] = cluster.events().now().seconds() - start;
                  ++done;
                });
          });
        });
  }
  const auto cap = sim::SimTime::from_seconds(30000.0);
  while (done < kJobs && !cluster.events().empty() &&
         cluster.events().now() < cap) {
    cluster.events().step();
  }
  for (std::size_t j = kWarmup; j < kJobs; ++j) {
    if (durations[j] >= 0.0) {
      result.completions.push_back(durations[j]);
    } else {
      ++result.incomplete;
      result.completions.push_back(cluster.events().now().seconds());
    }
  }
  result.summary = summarize(result.completions);
  return result;
}

double mean_of(const harness::RunResult& r) {
  double sum = 0.0;
  for (const double d : r.completions) sum += d;
  return r.completions.empty() ? 0.0
                               : sum / static_cast<double>(r.completions.size());
}

// --- decision-determinism gate ---------------------------------------------
// A mixed read+write admission workload against a standalone Flowserver; the
// transcript captures every decision bit-exactly. Identical transcripts at
// decision_threads 1 and 8 prove the snapshot pipeline treats write slots as
// deterministically as read slots.
std::string decision_transcript(std::size_t decision_threads) {
  constexpr int kRequests = 24;
  constexpr std::size_t kGroup = 8;
  sim::EventQueue events;
  net::ThreeTier tree = net::build_three_tier(net::ThreeTierConfig{});
  sdn::SdnFabric fabric(events, tree.topo);
  flowserver::FlowserverConfig cfg;
  cfg.decision_threads = decision_threads;
  cfg.batch_size = kGroup;
  flowserver::Flowserver server(fabric, cfg);

  const std::size_t hosts = tree.hosts.size();
  Rng rng(0x5eedULL);
  std::vector<std::vector<flowserver::ReadAssignment>> plans(kRequests);
  int posted = 0;
  while (posted < kRequests) {
    const int n = static_cast<int>(std::min<std::size_t>(
        kGroup, static_cast<std::size_t>(kRequests - posted)));
    for (int k = 0; k < n; ++k) {
      const int idx = posted + k;
      std::vector<net::NodeId> nodes;
      while (nodes.size() < 4) {
        const net::NodeId h = tree.hosts[rng.next_below(hosts)];
        if (std::find(nodes.begin(), nodes.end(), h) == nodes.end()) {
          nodes.push_back(h);
        }
      }
      const double bytes = rng.uniform(64e6, 512e6);
      auto sink = [&plans, idx](std::vector<flowserver::ReadAssignment> p) {
        plans[static_cast<std::size_t>(idx)] = std::move(p);
      };
      if (idx % 2 == 0) {
        server.enqueue_write(nodes, bytes, sink);
      } else {
        server.enqueue_read(nodes[0], {nodes[1], nodes[2], nodes[3]}, bytes,
                            sink);
      }
    }
    server.drain();
    for (int k = posted; k < posted + n; ++k) {
      for (const auto& a : plans[static_cast<std::size_t>(k)]) {
        fabric.start_flow(a.cookie, a.path, a.bytes, nullptr);
      }
    }
    posted += n;
    server.collect_stats();
  }

  std::ostringstream out;
  out << std::hexfloat;
  for (int i = 0; i < kRequests; ++i) {
    out << "req " << i << "\n";
    for (const auto& a : plans[static_cast<std::size_t>(i)]) {
      out << "  cookie=" << a.cookie << " replica=" << a.replica
          << " bytes=" << a.bytes << " est=" << a.est_bw_bps << " path=";
      for (const net::NodeId n : a.path.nodes) out << n << ",";
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace

int main() {
  bench::print_banner(
      "Write path: placement policy x replication transport",
      "create + append 256 MB per job, elephants pinned to pods 0-1");

  if (decision_transcript(1) != decision_transcript(8)) {
    std::fprintf(stderr,
                 "FAIL: write decisions differ between decision_threads 1 "
                 "and 8\n");
    return 1;
  }
  std::printf(
      "\ndecision determinism: transcripts byte-identical at "
      "decision_threads 1 and 8\n\n");

  const std::vector<std::pair<policy::WritePlacementKind, bool>> combos = {
      {policy::WritePlacementKind::kStatic, false},
      {policy::WritePlacementKind::kStatic, true},
      {policy::WritePlacementKind::kModel, false},
      {policy::WritePlacementKind::kModel, true},
      {policy::WritePlacementKind::kMeasured, false},
      {policy::WritePlacementKind::kMeasured, true},
  };
  double static_fanout_mean = 0.0;
  double measured_chain_mean = 0.0;
  harness::print_sweep_header("lambda");
  for (const double lambda : {0.02, 0.035}) {
    for (const auto& [placement, pipelined] : combos) {
      harness::RunResult pooled;
      for (const std::uint64_t seed : {1ULL, 2ULL}) {
        const auto r = run_write_path(placement, pipelined, lambda, seed);
        pooled.scheme = r.scheme;
        pooled.completions.insert(pooled.completions.end(),
                                  r.completions.begin(), r.completions.end());
        pooled.incomplete += r.incomplete;
      }
      pooled.summary = summarize(pooled.completions);
      harness::print_sweep_row(pooled.scheme, lambda, pooled);
      const double mean = mean_of(pooled);
      if (placement == policy::WritePlacementKind::kStatic && !pipelined) {
        static_fanout_mean += mean;
      }
      if (placement == policy::WritePlacementKind::kMeasured && pipelined) {
        measured_chain_mean += mean;
      }
    }
  }

  const double speedup = measured_chain_mean > 0.0
                             ? static_fanout_mean / measured_chain_mean
                             : 0.0;
  std::printf(
      "\nmeasured+chain vs static+fanout mean append completion: %.2fx\n"
      "The chain kills the upload leg (writer-local primary) and overlaps\n"
      "the relay hops at the joint bottleneck; measured placement steers\n"
      "replicas off the elephant-loaded pods that the believed-flow model\n"
      "cannot see.\n",
      speedup);
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: expected >= 2x, got %.2fx\n", speedup);
    return 1;
  }
  return 0;
}
