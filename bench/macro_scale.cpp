// Macro-scale benchmark: datacenter-sized selection on k-ary fat-trees.
//
// Sweeps fat-tree arity x background-flow population and, at each point,
// drives an identical churny selection stream through a LEGACY
// (single-shard) and a SHARDED (by edge switch) Flowserver:
//
//  * every request is preceded by one background SETBW, so the decision
//    snapshot is stale at every request — the scenario the sharded state
//    plane exists for. Legacy pays a full table re-copy per request; sharded
//    reloads exactly the one shard the churn touched;
//  * requests read same-rack replicas, keeping the selection itself at
//    O(flows near one edge) in both layouts so the sweep isolates the
//    rebuild cost (the quantity sharding changes);
//  * decision records are byte-compared across layouts (the sharding
//    invariant) and the sharded run's records go to stdout, where CI's
//    rerun-and-diff checks determinism end to end.
//
// Reported per sweep point (stderr): selections/s for both layouts, mean
// view-refresh latency for both, and the time for one global max-min solve
// (net::solve_max_min) over the whole background population — the
// ground-truth allocator's cost at this scale, for context against the
// incremental path the control plane actually uses.
//
// Acceptance (exit code): sharded selections/s >= 5x legacy at every
// k >= 16 sweep point with >= 10k background flows, and decision identity
// everywhere. (At k=8, 10k flows crowd a 128-host fabric so heavily that
// selection over the shared rack dominates both layouts — those points
// check identity and shape, not the bar.) Default sweep: k=8 x {1k, 10k}
// and k=16 x {10k} (the 1024-host bar). --full adds k=16 x 25k and
// k=32 x 100k.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "flowserver/flowserver.hpp"
#include "net/fair_share.hpp"
#include "net/fat_tree.hpp"

namespace mayflower::flowserver {
namespace {

constexpr std::size_t kRequests = 192;

struct Workload {
  // Background flows, preloaded into every server under test.
  std::vector<sdn::Cookie> cookies;
  std::vector<net::Path> paths;
  std::vector<double> rates;
  // Request stream (same-rack replica sets).
  std::vector<net::NodeId> clients;
  std::vector<std::vector<net::NodeId>> replica_sets;
};

// One deterministic workload per sweep point, shared by both layouts so
// their decision streams are comparable byte for byte.
Workload make_workload(const net::ThreeTier& tree, std::size_t flows) {
  Workload w;
  Rng rng(42);
  net::PathCache cache(tree.topo);
  const std::size_t hosts_per_rack = tree.config.hosts_per_rack;
  const std::size_t racks = tree.edge_switches.size();
  w.cookies.reserve(flows);
  w.paths.reserve(flows);
  w.rates.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    // Intra-rack background pairs: 2-link paths through one edge switch.
    // Keeps workload generation linear in `flows` (no large multi-path
    // enumerations) while still loading every edge shard of the fabric.
    const std::size_t rack = rng.next_below(racks);
    const net::NodeId src =
        tree.hosts[rack * hosts_per_rack + rng.next_below(hosts_per_rack)];
    net::NodeId dst = src;
    while (dst == src) {
      dst = tree.hosts[rack * hosts_per_rack +
                       rng.next_below(hosts_per_rack)];
    }
    const auto& paths = cache.get(src, dst);
    w.cookies.push_back(static_cast<sdn::Cookie>(1000000 + i));
    w.paths.push_back(paths[rng.next_below(paths.size())]);
    w.rates.push_back(rng.uniform(1e6, 125e6));
  }

  Rng req_rng(7);
  w.clients.resize(kRequests);
  w.replica_sets.resize(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const std::size_t rack = req_rng.next_below(racks);
    const auto host = [&](std::size_t h) {
      return tree.hosts[rack * hosts_per_rack + h];
    };
    w.clients[i] = host(req_rng.next_below(hosts_per_rack));
    std::vector<net::NodeId> reps;
    while (reps.size() < 3) {
      const net::NodeId r = host(req_rng.next_below(hosts_per_rack));
      bool dup = r == w.clients[i];
      for (const net::NodeId seen : reps) dup |= (seen == r);
      if (!dup) reps.push_back(r);
    }
    w.replica_sets[i] = std::move(reps);
  }
  return w;
}

struct LayoutRun {
  double secs = 0.0;
  double refresh_sec_mean = 0.0;  // mean stale-view refresh latency
  std::vector<std::string> decisions;
};

LayoutRun run_layout(const net::ThreeTier& tree, const Workload& w,
                     bool sharded) {
  sim::EventQueue events;
  sdn::SdnFabric fabric(events, tree.topo);

  FlowserverConfig cfg;
  cfg.shard_by_edge = sharded;
  Flowserver server(fabric, cfg);
  for (std::size_t i = 0; i < w.cookies.size(); ++i) {
    server.table().add(w.cookies[i], w.paths[i], 256e6, w.rates[i],
                       sim::SimTime{});
  }
  server.view();  // first (full) build outside the timed loop, both layouts

  LayoutRun run;
  run.decisions.reserve(kRequests);
  Rng churn_rng(11);
  double refresh_sec = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kRequests; ++i) {
    const sdn::Cookie victim =
        w.cookies[churn_rng.next_below(w.cookies.size())];
    server.table().setbw(victim, churn_rng.uniform(1e6, 125e6),
                          sim::SimTime{});
    // Timing the refresh alone (the view is stale from the SETBW above)
    // separates "cost of absorbing churn" from the selection that follows.
    const auto r0 = std::chrono::steady_clock::now();
    server.view();
    const auto r1 = std::chrono::steady_clock::now();
    refresh_sec += std::chrono::duration<double>(r1 - r0).count();
    server.enqueue_read(w.clients[i], w.replica_sets[i], 256e6,
                        [&run](std::vector<ReadAssignment> plan) {
                          for (const ReadAssignment& a : plan) {
                            char line[96];
                            std::snprintf(line, sizeof line, "%u %zu %.6g",
                                          a.replica, a.path.links.size(),
                                          a.est_bw_bps);
                            run.decisions.emplace_back(line);
                          }
                        });
  }
  const auto t1 = std::chrono::steady_clock::now();
  run.secs = std::chrono::duration<double>(t1 - t0).count();
  run.refresh_sec_mean = refresh_sec / static_cast<double>(kRequests);
  return run;
}

// One global max-min solve over the background population: what the
// ground-truth allocator costs at this scale.
double time_max_min_solve(const net::ThreeTier& tree, const Workload& w) {
  std::vector<net::FlowDemand> demands;
  demands.reserve(w.paths.size());
  for (const net::Path& p : w.paths) {
    demands.push_back(net::FlowDemand{p.links, net::kInfiniteDemand});
  }
  std::vector<double> capacity(tree.topo.link_count());
  for (net::LinkId l = 0; l < static_cast<net::LinkId>(capacity.size());
       ++l) {
    capacity[l] = tree.topo.link(l).capacity_bps;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<double> rates = net::solve_max_min(demands, capacity);
  const auto t1 = std::chrono::steady_clock::now();
  MAYFLOWER_ASSERT(rates.size() == demands.size());
  return std::chrono::duration<double>(t1 - t0).count();
}

struct SweepPoint {
  std::uint32_t k = 8;
  std::size_t flows = 0;
  bool full_only = false;  // runs only with --full
};

int sweep_main(bool full) {
  const SweepPoint points[] = {
      {8, 1000, false},  {8, 10000, false},  {16, 10000, false},
      {16, 25000, true}, {32, 100000, true},
  };
  bool ok = true;
  std::uint32_t built_k = 0;
  net::ThreeTier tree;
  for (const SweepPoint& pt : points) {
    if (pt.full_only && !full) continue;
    if (built_k != pt.k) {
      tree = net::three_tier_from_fat_tree(net::FatTreeConfig{pt.k, 125e6});
      built_k = pt.k;
    }
    const Workload w = make_workload(tree, pt.flows);
    const LayoutRun legacy = run_layout(tree, w, false);
    const LayoutRun sharded = run_layout(tree, w, true);
    const double solve_sec = time_max_min_solve(tree, w);

    // Sharded decision records to stdout: CI reruns the binary and diffs.
    for (const std::string& d : sharded.decisions) {
      std::printf("%s\n", d.c_str());
    }

    const double speedup = legacy.secs / sharded.secs;
    std::fprintf(stderr,
                 "k=%-2u flows=%-6zu hosts=%zu\n"
                 "  legacy  %9.0f selections/s  refresh %8.1f us\n"
                 "  sharded %9.0f selections/s  refresh %8.1f us  "
                 "(%.1fx, bar >= 5x at k >= 16, >= 10k flows)\n"
                 "  max-min solve over %zu flows: %.1f ms\n",
                 pt.k, pt.flows, tree.hosts.size(),
                 kRequests / legacy.secs, legacy.refresh_sec_mean * 1e6,
                 kRequests / sharded.secs, sharded.refresh_sec_mean * 1e6,
                 speedup, pt.flows, solve_sec * 1e3);

    if (legacy.decisions != sharded.decisions) {
      std::fprintf(stderr,
                   "FAIL: sharded decisions diverge from legacy at k=%u "
                   "flows=%zu\n",
                   pt.k, pt.flows);
      ok = false;
    }
    if (pt.k >= 16 && pt.flows >= 10000 && speedup < 5.0) {
      std::fprintf(stderr,
                   "FAIL: sharded speedup %.2fx below 5x at k=%u flows=%zu\n",
                   speedup, pt.k, pt.flows);
      ok = false;
    }
  }
  if (ok) std::fprintf(stderr, "PASS\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mayflower::flowserver

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  return mayflower::flowserver::sweep_main(full);
}
