// Figure 5: scheme comparison across client locality distributions
// (R, P, O) = probability the client lands in the same rack / same pod /
// another pod relative to the primary replica. Groups, left to right:
// (0.5,0.3,0.2), (0.3,0.5,0.2), (0.2,0.3,0.5), (0.33,0.33,0.33); all at
// lambda = 0.07.
//
// Paper avg factors per group (sinbad-mf / sinbad-ecmp / nearest-mf /
// nearest-ecmp): (1.42,1.69,3.24,3.42), (1.42,1.71,1.86,2.16),
// (1.5,2.82,1.52,2.78), (1.42,2.04,1.62,2.16).
#include "bench_common.hpp"

using namespace mayflower;

int main() {
  bench::print_banner("Figure 5",
                      "impact of client locality relative to the primary "
                      "replica, lambda=0.07");

  struct Group {
    const char* label;
    workload::Locality locality;
  };
  const Group groups[] = {
      {"(R,P,O) = (0.50, 0.30, 0.20) — 50% in the same rack", {0.50, 0.30}},
      {"(R,P,O) = (0.30, 0.50, 0.20) — 50% in the same pod", {0.30, 0.50}},
      {"(R,P,O) = (0.20, 0.30, 0.50) — 50% out of the pod", {0.20, 0.30}},
      {"(R,P,O) = (0.33, 0.33, 0.34) — equally distributed", {0.33, 0.33}},
  };
  const harness::SchemeKind kinds[] = {
      harness::SchemeKind::kMayflower,
      harness::SchemeKind::kSinbadMayflower,
      harness::SchemeKind::kSinbadEcmp,
      harness::SchemeKind::kNearestMayflower,
      harness::SchemeKind::kNearestEcmp,
  };

  for (const Group& g : groups) {
    std::vector<harness::RunResult> results;
    for (const auto kind : kinds) {
      harness::ExperimentConfig cfg = bench::paper_config(kind);
      cfg.gen.locality = g.locality;
      results.push_back(bench::run_pooled(cfg, bench::default_seeds()));
    }
    harness::print_normalized_group(g.label, results);
  }
  return 0;
}
