// Figure 8: the *full filesystem stack* — nameserver, dataservers, client
// library, RPC serialization, replica relays — running over the simulated
// fabric, comparing Mayflower against an HDFS-like configuration
// (rack-aware replica selection) with ECMP and with Mayflower flow
// scheduling, at lambda in {0.06, 0.07, 0.08}.
//
// Paper reference (avg seconds): mayflower 2.91 / 3.09 / 3.36,
// hdfs-mayflower 8.93 / 13.2 / 11.3, hdfs-ecmp 13.4 / 14.9 / 16.0;
// p95: 5.41 / 5.99 / 6.87 vs 36.5 / 70.3 / 35 vs 67.4 / 67.5 / 66.5.
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "fs/cluster.hpp"
#include "workload/generator.hpp"

using namespace mayflower;

namespace {

constexpr std::size_t kFiles = 120;
constexpr std::uint64_t kFileBytes = 256'000'000;
constexpr std::size_t kWarmup = 50;
constexpr std::size_t kJobs = 450;

struct Fig8Result {
  std::vector<double> completions;
  std::size_t incomplete = 0;
};

Fig8Result run_fs_experiment(fs::FsScheme scheme, double lambda,
                             std::uint64_t seed) {
  fs::ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.nameserver.chunk_size = kFileBytes;
  fs::Cluster cluster(cfg);
  const net::ThreeTier& tree = cluster.tree();

  // --- dataset setup: create + append every file through the real write
  // path (client -> primary -> relayed replicas). -------------------------
  std::size_t pending_writes = kFiles;
  Rng setup_rng(splitmix64(seed ^ 0x8e7f));
  for (std::size_t i = 0; i < kFiles; ++i) {
    const std::string name = strfmt("file-%04zu", i);
    fs::Client& writer =
        cluster.client_at(tree.hosts[setup_rng.next_below(tree.hosts.size())]);
    writer.create(name, [&cluster, &writer, &pending_writes, name, i](
                            fs::Status status, const fs::FileInfo&) {
      MAYFLOWER_ASSERT(status == fs::Status::kOk);
      writer.append(name, fs::ExtentList(fs::Extent::pattern(i, kFileBytes)),
                    [&pending_writes](fs::Status astatus,
                                      const fs::AppendResp&) {
                      MAYFLOWER_ASSERT(astatus == fs::Status::kOk);
                      --pending_writes;
                    });
    });
  }
  while (pending_writes > 0 && !cluster.events().empty()) {
    cluster.events().step();
  }
  MAYFLOWER_ASSERT(pending_writes == 0);

  // --- workload: Zipf file popularity, Poisson arrivals, staggered client
  // locality relative to each file's primary (§6.1.1), identical across
  // schemes for a given seed. ---------------------------------------------
  std::vector<workload::FileMeta> metas(kFiles);
  for (std::size_t i = 0; i < kFiles; ++i) {
    const auto info = cluster.nameserver().lookup(strfmt("file-%04zu", i));
    MAYFLOWER_ASSERT(info.has_value());
    metas[i].id = static_cast<std::uint32_t>(i);
    metas[i].bytes = static_cast<double>(info->size);
    metas[i].replicas = info->replicas;
  }
  Rng job_rng(splitmix64(seed ^ 0x77aa));
  const ZipfSampler zipf(kFiles, 1.1);
  const workload::Locality locality{0.5, 0.3};
  const double base_time = cluster.events().now().seconds() + 5.0;
  const double system_rate = lambda * static_cast<double>(tree.hosts.size());

  Fig8Result result;
  std::size_t jobs_done = 0;
  std::vector<double> durations(kJobs, -1.0);
  double arrival = base_time;
  for (std::size_t j = 0; j < kJobs; ++j) {
    arrival += job_rng.exponential(system_rate);
    const std::size_t file_idx = zipf.sample(job_rng);
    const net::NodeId client_host =
        workload::place_client(tree, metas[file_idx], locality, job_rng);
    cluster.events().schedule_at(
        sim::SimTime::from_seconds(arrival),
        [&cluster, &durations, &jobs_done, j, file_idx, client_host] {
          const double start = cluster.events().now().seconds();
          cluster.client_at(client_host)
              .read_file(strfmt("file-%04zu", file_idx),
                         [&cluster, &durations, &jobs_done, j, start](
                             fs::Status status, fs::ReadResult read) {
                           MAYFLOWER_ASSERT(status == fs::Status::kOk);
                           MAYFLOWER_ASSERT(read.data.size() == kFileBytes);
                           durations[j] =
                               cluster.events().now().seconds() - start;
                           ++jobs_done;
                         });
        });
  }

  const auto cap = sim::SimTime::from_seconds(base_time + 20000.0);
  while (jobs_done < kJobs && !cluster.events().empty() &&
         cluster.events().now() < cap) {
    cluster.events().step();
  }
  for (std::size_t j = kWarmup; j < kJobs; ++j) {
    if (durations[j] >= 0.0) {
      result.completions.push_back(durations[j]);
    } else {
      ++result.incomplete;
      result.completions.push_back(cluster.events().now().seconds() -
                                   base_time);
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::print_banner(
      "Figure 8",
      "full filesystem prototype: Mayflower vs HDFS-Mayflower vs HDFS-ECMP");
  std::printf(
      "\npaper avg (s): mayflower 2.91/3.09/3.36, hdfs-mayflower "
      "8.93/13.2/11.3, hdfs-ecmp 13.4/14.9/16.0\n\n");
  harness::print_sweep_header("lambda");
  for (const fs::FsScheme scheme :
       {fs::FsScheme::kMayflower, fs::FsScheme::kHdfsMayflower,
        fs::FsScheme::kHdfsEcmp}) {
    for (const double lambda : {0.06, 0.07, 0.08}) {
      harness::RunResult row;
      row.scheme = fs::to_string(scheme);
      for (const std::uint64_t seed : {1ULL, 2ULL}) {
        const Fig8Result r = run_fs_experiment(scheme, lambda, seed);
        row.completions.insert(row.completions.end(), r.completions.begin(),
                               r.completions.end());
        row.incomplete += r.incomplete;
      }
      row.summary = summarize(row.completions);
      harness::print_sweep_row(row.scheme, lambda, row);
    }
  }
  return 0;
}
