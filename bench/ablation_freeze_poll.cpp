// Ablation (§4.2 "slack in updating bandwidth utilization" + DESIGN.md
// choice #2): the update-freeze state exists so a fresh selection-time
// estimate is not clobbered by the next stats poll. Sweep the poll interval
// with freeze on/off; the shorter the interval, the more an unfrozen table
// thrashes between measurement and estimate.
#include "bench_common.hpp"

#include "common/strings.hpp"

using namespace mayflower;

int main() {
  bench::print_banner("Ablation: update-freeze x stats poll interval",
                      "mayflower, locality (0.5, 0.3, 0.2), lambda=0.10");
  std::printf("\n");
  harness::print_sweep_header("poll (s)");
  for (const bool freeze : {true, false}) {
    for (const double poll_sec : {0.25, 0.5, 1.0, 2.0, 5.0}) {
      harness::ExperimentConfig cfg = bench::paper_config(
          freeze ? harness::SchemeKind::kMayflower
                 : harness::SchemeKind::kMayflowerNoFreeze,
          0.10);
      cfg.flowserver.poll_interval = sim::SimTime::from_seconds(poll_sec);
      const harness::RunResult r =
          bench::run_pooled(cfg, bench::default_seeds());
      harness::print_sweep_row(
          strfmt("%s", freeze ? "freeze on" : "freeze off"), poll_sec, r);
    }
  }
  return 0;
}
