// Topology sensitivity (§2.2): "A number of different network topologies
// have been proposed to increase the bisection bandwidth ... Nevertheless,
// oversubscribed multi-tier hierarchical topologies are still prevalent."
//
// Quantifies how Mayflower's advantage depends on the fabric by running the
// same read workload on:
//   * the paper's 8:1 oversubscribed 3-tier tree (64 hosts),
//   * a 24:1 variant (worse core), and
//   * a k=8 fat-tree (128 hosts, full bisection).
// Finding: bisection bandwidth does NOT dissolve the co-design advantage —
// with rack-local-skewed clients the binding constraint is the chosen
// replica's access link, which no amount of core capacity fixes; only
// choosing a different replica does. (Consistent with [8]'s "disk-locality
// considered irrelevant" and the paper's flat-storage discussion in §2.2.)
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "flowserver/flowserver.hpp"
#include "net/fat_tree.hpp"
#include "policy/scheme.hpp"
#include "workload/generator.hpp"

using namespace mayflower;

namespace {

// Generic single-run harness: works on any topology given a host list and a
// pod labelling (the tree-specific workload machinery assumes ThreeTier, so
// the fat-tree case gets its own compact driver here).
struct GenericResult {
  std::vector<double> completions;
};

GenericResult run_on_fat_tree(bool use_mayflower, double lambda,
                              std::uint64_t seed) {
  const net::FatTree tree = net::build_fat_tree(net::FatTreeConfig{.k = 8});
  sim::EventQueue events;
  sdn::SdnFabric fabric(events, tree.topo);
  Rng rng(splitmix64(seed ^ 0xfa77ULL));

  flowserver::Flowserver server(fabric, flowserver::FlowserverConfig{});
  server.start();
  net::PathCache paths(tree.topo);
  const net::EcmpHasher ecmp(seed);

  // Catalog: primary uniform; second replica same pod / different edge;
  // third in another pod (the §6.1.1 constraints, fat-tree flavoured).
  constexpr std::size_t kFiles = 400;
  constexpr double kBytes = 256e6;
  std::vector<std::vector<net::NodeId>> replicas(kFiles);
  for (auto& reps : replicas) {
    const net::NodeId primary = tree.hosts[rng.next_below(tree.hosts.size())];
    reps.push_back(primary);
    auto pick = [&](auto&& pred) {
      std::vector<net::NodeId> pool;
      for (const net::NodeId h : tree.hosts) {
        bool used_edge = false;
        for (const net::NodeId r : reps) {
          used_edge |= tree.edge_index_of(r) == tree.edge_index_of(h);
        }
        if (!used_edge && pred(h)) pool.push_back(h);
      }
      reps.push_back(pool[rng.next_below(pool.size())]);
    };
    pick([&](net::NodeId h) { return tree.pod_of(h) == tree.pod_of(primary); });
    pick([&](net::NodeId h) { return tree.pod_of(h) != tree.pod_of(primary); });
  }

  constexpr std::size_t kJobs = 1100;
  constexpr std::size_t kWarmup = 100;
  const ZipfSampler zipf(kFiles, 1.1);
  const double system_rate = lambda * static_cast<double>(tree.hosts.size());

  GenericResult result;
  std::size_t done = 0;
  std::vector<double> durations(kJobs, -1.0);
  double arrival = 0.0;
  for (std::size_t j = 0; j < kJobs; ++j) {
    arrival += rng.exponential(system_rate);
    const std::size_t file = zipf.sample(rng);
    // Staggered locality (0.5, 0.3, 0.2) relative to the primary.
    const net::NodeId primary = replicas[file][0];
    const double u = rng.next_double();
    std::vector<net::NodeId> pool;
    for (const net::NodeId h : tree.hosts) {
      if (std::find(replicas[file].begin(), replicas[file].end(), h) !=
          replicas[file].end()) {
        continue;
      }
      const bool same_edge =
          tree.edge_index_of(h) == tree.edge_index_of(primary);
      const bool same_pod = tree.pod_of(h) == tree.pod_of(primary);
      if (u < 0.5 ? same_edge
                  : (u < 0.8 ? (same_pod && !same_edge) : !same_pod)) {
        pool.push_back(h);
      }
    }
    const net::NodeId client = pool[rng.next_below(pool.size())];

    events.schedule_at(
        sim::SimTime::from_seconds(arrival),
        [&, j, file, client, use_mayflower] {
          const double start = events.now().seconds();
          if (use_mayflower) {
            const auto plan =
                server.select_for_read(client, replicas[file], kBytes);
            auto remaining = std::make_shared<std::size_t>(plan.size());
            for (const auto& a : plan) {
              fabric.start_flow(a.cookie, a.path, a.bytes,
                                [&, j, start, remaining](sdn::Cookie cookie,
                                                         sim::SimTime) {
                                  server.flow_dropped(cookie);
                                  if (--*remaining == 0) {
                                    durations[j] =
                                        events.now().seconds() - start;
                                    ++done;
                                  }
                                });
            }
          } else {
            // Nearest + ECMP.
            net::NodeId best = replicas[file][0];
            int best_d = 1 << 30;
            for (const net::NodeId r : replicas[file]) {
              const int d = tree.topo.hop_distance(r, client);
              if (d < best_d) {
                best_d = d;
                best = r;
              }
            }
            const auto& candidates = paths.get(best, client);
            const sdn::Cookie cookie = fabric.new_cookie();
            const net::Path& p = ecmp.choose(candidates, best, client, cookie);
            fabric.install_path(cookie, p);
            fabric.start_flow(cookie, p, kBytes,
                              [&, j, start](sdn::Cookie, sim::SimTime) {
                                durations[j] = events.now().seconds() - start;
                                ++done;
                              });
          }
        });
  }
  while (done < kJobs && !events.empty() &&
         events.now() < sim::SimTime::from_seconds(100000)) {
    events.step();
  }
  server.stop();
  for (std::size_t j = kWarmup; j < kJobs; ++j) {
    if (durations[j] >= 0.0) result.completions.push_back(durations[j]);
  }
  return result;
}

}  // namespace

int main() {
  bench::print_banner("Topology sensitivity",
                      "oversubscribed trees vs full-bisection fat-tree");
  std::printf("\n%-34s %14s %14s %8s\n", "topology / scheme", "avg (s)",
              "p95 (s)", "ratio");

  for (const double ratio : {8.0, 24.0}) {
    harness::ExperimentConfig mf =
        bench::paper_config(harness::SchemeKind::kMayflower);
    mf.fabric = net::ThreeTierConfig::with_oversubscription(ratio);
    harness::ExperimentConfig ne =
        bench::paper_config(harness::SchemeKind::kNearestEcmp);
    ne.fabric = mf.fabric;
    const auto a = bench::run_pooled(mf, {1, 2});
    const auto b = bench::run_pooled(ne, {1, 2});
    std::printf("%-34s %14.2f %14.2f\n",
                strfmt("tree %g:1 / mayflower", ratio).c_str(),
                a.summary.mean, a.summary.p95);
    std::printf("%-34s %14.2f %14.2f %7.2fx\n",
                strfmt("tree %g:1 / nearest-ecmp", ratio).c_str(),
                b.summary.mean, b.summary.p95,
                b.summary.mean / a.summary.mean);
  }

  std::vector<double> mf_all, ne_all;
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    const auto a = run_on_fat_tree(true, 0.07, seed);
    const auto b = run_on_fat_tree(false, 0.07, seed);
    mf_all.insert(mf_all.end(), a.completions.begin(), a.completions.end());
    ne_all.insert(ne_all.end(), b.completions.begin(), b.completions.end());
  }
  const Summary ms = summarize(mf_all);
  const Summary ns = summarize(ne_all);
  std::printf("%-34s %14.2f %14.2f\n", "fat-tree k=8 1:1 / mayflower",
              ms.mean, ms.p95);
  std::printf("%-34s %14.2f %14.2f %7.2fx\n",
              "fat-tree k=8 1:1 / nearest-ecmp", ns.mean, ns.p95,
              ns.mean / ms.mean);
  std::printf(
      "\nReading: on trees, relieving the core (8:1 -> 24:1 reversed) shifts\n"
      "where the pain is but Mayflower wins throughout. On the fat-tree the\n"
      "gap persists — full bisection cannot fix a hot access link; only\n"
      "replica choice can, which is exactly the co-design argument.\n");
  return 0;
}
