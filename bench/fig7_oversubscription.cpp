// Figure 7: impact of the core-to-rack oversubscription ratio (8:1, 16:1,
// 24:1) on Mayflower and Sinbad-R Mayflower — the two best schemes — with
// 50% rack-local clients at lambda = 0.07. The paper observes completion
// times roughly doubling when the ratio doubles.
#include "bench_common.hpp"

using namespace mayflower;

int main() {
  bench::print_banner("Figure 7", "impact of network oversubscription");
  std::printf("\n");
  harness::print_sweep_header("oversub");
  for (const auto kind : {harness::SchemeKind::kMayflower,
                          harness::SchemeKind::kSinbadMayflower}) {
    for (const double ratio : {8.0, 16.0, 24.0}) {
      harness::ExperimentConfig cfg = bench::paper_config(kind);
      cfg.fabric = net::ThreeTierConfig::with_oversubscription(ratio);
      const harness::RunResult r =
          bench::run_pooled(cfg, bench::default_seeds());
      harness::print_sweep_row(r.scheme, ratio, r);
    }
  }
  return 0;
}
