// Extension ablation (paper §3.3: "it would be relatively straightforward
// to implement a Sinbad-like replica placement strategy by having the
// nameserver make the placement decision collaboratively with the
// Flowserver"): a write-heavy workload where every job creates a file and
// appends one 256 MB block (upload + 2 relay transfers), comparing
//
//   static     — the paper's evaluated system: random constrained placement,
//                ECMP write paths;
//   placement  — Flowserver-collaborative replica placement;
//   placement+writes — collaborative placement AND Flowserver-scheduled
//                upload/relay flows (full write-path co-design).
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "fs/cluster.hpp"

using namespace mayflower;

namespace {

constexpr std::uint64_t kBlockBytes = 256'000'000;

harness::RunResult run_write_experiment(bool collaborative, bool co_writes,
                                        double lambda, std::uint64_t seed) {
  fs::ClusterConfig cfg;
  cfg.scheme = fs::FsScheme::kMayflower;
  cfg.collaborative_placement = collaborative;
  cfg.co_designed_writes = co_writes;
  cfg.nameserver.chunk_size = kBlockBytes;
  cfg.seed = seed;
  fs::Cluster cluster(cfg);
  const net::ThreeTier& tree = cluster.tree();

  constexpr std::size_t kJobs = 250;
  constexpr std::size_t kWarmup = 30;
  Rng rng(splitmix64(seed ^ 0x77e11ULL));
  harness::RunResult result;
  result.scheme = co_writes       ? "placement+writes"
                  : collaborative ? "placement"
                                  : "static";

  std::size_t done = 0;
  std::vector<double> durations(kJobs, -1.0);
  const double system_rate = lambda * static_cast<double>(tree.hosts.size());
  double arrival = 0.0;
  for (std::size_t j = 0; j < kJobs; ++j) {
    arrival += rng.exponential(system_rate);
    const net::NodeId writer_host =
        tree.hosts[rng.next_below(tree.hosts.size())];
    cluster.events().schedule_at(
        sim::SimTime::from_seconds(arrival),
        [&cluster, &durations, &done, j, writer_host] {
          const double start = cluster.events().now().seconds();
          const std::string name = strfmt("out-%04zu", j);
          fs::Client& writer = cluster.client_at(writer_host);
          writer.create(name, [&cluster, &writer, &durations, &done, j, name,
                               start](fs::Status s, const fs::FileInfo&) {
            MAYFLOWER_ASSERT(s == fs::Status::kOk);
            writer.append(
                name, fs::ExtentList(fs::Extent::pattern(j, kBlockBytes)),
                [&cluster, &durations, &done, j, start](
                    fs::Status as, const fs::AppendResp&) {
                  MAYFLOWER_ASSERT(as == fs::Status::kOk);
                  durations[j] = cluster.events().now().seconds() - start;
                  ++done;
                });
          });
        });
  }
  const auto cap = sim::SimTime::from_seconds(30000.0);
  while (done < kJobs && !cluster.events().empty() &&
         cluster.events().now() < cap) {
    cluster.events().step();
  }
  for (std::size_t j = kWarmup; j < kJobs; ++j) {
    if (durations[j] >= 0.0) {
      result.completions.push_back(durations[j]);
    } else {
      ++result.incomplete;
      result.completions.push_back(cluster.events().now().seconds());
    }
  }
  result.summary = summarize(result.completions);
  return result;
}

}  // namespace

int main() {
  bench::print_banner(
      "Extension ablation: collaborative placement / write co-design",
      "write-heavy workload (create + append 256 MB per job)");
  std::printf("\n");
  harness::print_sweep_header("lambda");
  for (const double lambda : {0.02, 0.03, 0.04}) {
    for (const auto& [collaborative, co_writes] :
         std::vector<std::pair<bool, bool>>{
             {false, false}, {true, false}, {true, true}}) {
      harness::RunResult pooled;
      for (const std::uint64_t seed : {1ULL, 2ULL}) {
        const auto r =
            run_write_experiment(collaborative, co_writes, lambda, seed);
        pooled.scheme = r.scheme;
        pooled.completions.insert(pooled.completions.end(),
                                  r.completions.begin(), r.completions.end());
        pooled.incomplete += r.incomplete;
      }
      pooled.summary = summarize(pooled.completions);
      harness::print_sweep_row(pooled.scheme, lambda, pooled);
    }
  }
  std::printf(
      "\nAppend completion includes the client upload, primary apply and\n"
      "both replica relays (the slowest of which gates the ack).\n"
      "Collaborative placement rediscovers writer-locality on its own: the\n"
      "writer's host offers the highest write bandwidth (zero network hops),\n"
      "so the primary lands there — the policy HDFS hardcodes — and the\n"
      "upload leg disappears; the rest of the win is load spreading.\n");
  return 0;
}
